#include "async/param_server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "async/total_momentum.hpp"
#include "autograd/tape.hpp"
#include "core/kernels.hpp"
#include "core/parallel.hpp"

namespace yf::async {

namespace {

optim::Optimizer& checked(const std::shared_ptr<optim::Optimizer>& optimizer, const char* who) {
  if (!optimizer) throw std::invalid_argument(std::string(who) + ": null optimizer");
  return *optimizer;
}

/// Per-worker backward/apply overlap (DESIGN.md §10): registers each
/// replica parameter as a tape completion group, maps it onto the server
/// shards its arena span overlaps, and pushes a shard the moment every
/// parameter contributing to it has a final gradient -- the worker's own
/// backward is still draining while the master absorbs the finished
/// shards. A replica's engine runs its hooks inline (worker threads get
/// zero helpers), so no synchronization is needed here; the master side
/// is protected by the ordinary shard locks. Master-arena writes never
/// touch replica values, so only gradient finality gates the push.
class WorkerOverlap final : public autograd::GraphTape::BackwardHooks {
 public:
  WorkerOverlap(ShardedParamServer& server, core::ParamArena& replica,
                const std::vector<autograd::Variable>& params, autograd::GraphTape& tape)
      : server_(server), replica_(replica), tape_(&tape) {
    const auto shard_count = static_cast<std::size_t>(server.shard_count());
    shard_params_.assign(shard_count, 0);
    shard_remaining_.assign(shard_count, 0);

    std::vector<autograd::GraphTape::LeafGroup> leaves;
    std::vector<const autograd::Node*> seen;
    leaves.reserve(params.size());
    seen.reserve(params.size());
    for (const autograd::Variable& p : params) {
      const autograd::Node* node = p.node().get();
      if (std::find(seen.begin(), seen.end(), node) != seen.end()) continue;
      seen.push_back(node);
      const std::size_t slot = replica.slot_index(p);
      const std::int64_t lo = replica.offset(slot);
      const std::int64_t hi = lo + static_cast<std::int64_t>(replica.slot_size(slot));
      std::size_t first = shard_count;
      std::size_t last = 0;
      for (std::size_t k = 0; k < shard_count; ++k) {
        const auto [slo, shi] = server.shard_range(k);
        if (slo < hi && lo < shi) {
          first = std::min(first, k);
          last = std::max(last, k);
          ++shard_params_[k];
        }
      }
      leaves.push_back({p.node().get(), param_span_.size()});
      param_span_.emplace_back(first, last);
    }
    tape.set_backward_hooks(this, leaves, param_span_.size());
  }

  ~WorkerOverlap() override { tape_->set_backward_hooks(nullptr, {}, 0); }
  WorkerOverlap(const WorkerOverlap&) = delete;
  WorkerOverlap& operator=(const WorkerOverlap&) = delete;

  /// Arm for one backward pass; `stage` must already be begun and
  /// `ticket` filled by this step's pull. Both must outlive flush().
  void arm(PushStage& stage, const PullTicket& ticket) {
    stage_ = &stage;
    ticket_ = &ticket;
    std::copy(shard_params_.begin(), shard_params_.end(), shard_remaining_.begin());
    armed_ = true;
  }

  void on_group_complete(std::size_t group) override {
    if (!armed_) return;
    const auto [first, last] = param_span_[group];
    for (std::size_t k = first; k <= last && k < shard_remaining_.size(); ++k) {
      if (--shard_remaining_[k] == 0) {
        server_.push_shard(*stage_, k, replica_.grads(), *ticket_);
        ++overlapped_;
      }
    }
  }

  /// Push every shard backward did not complete (parameters absent from
  /// the traversal keep their shards pending) and disarm.
  void flush() {
    if (!armed_) return;
    for (std::size_t k = 0; k < shard_remaining_.size(); ++k) {
      if (shard_remaining_[k] > 0) server_.push_shard(*stage_, k, replica_.grads(), *ticket_);
    }
    armed_ = false;
  }

  std::int64_t overlapped() const { return overlapped_; }

 private:
  ShardedParamServer& server_;
  core::ParamArena& replica_;
  autograd::GraphTape* tape_;
  std::vector<std::pair<std::size_t, std::size_t>> param_span_;  ///< shard [first, last]
  std::vector<std::int64_t> shard_params_;     ///< params overlapping each shard
  std::vector<std::int64_t> shard_remaining_;  ///< this pass, counts down to push
  PushStage* stage_ = nullptr;
  const PullTicket* ticket_ = nullptr;
  bool armed_ = false;
  std::int64_t overlapped_ = 0;
};

}  // namespace

ShardedParamServer::ShardedParamServer(std::shared_ptr<optim::Optimizer> optimizer,
                                       const ParamServerOptions& opts)
    : optimizer_(std::move(optimizer)),
      control_(checked(optimizer_, "ShardedParamServer"), opts.mu_target),
      opts_(opts),
      controller_(opts.gamma) {
  if (opts_.measure && opts_.history < 3) {
    throw std::invalid_argument(
        "ShardedParamServer: measurement needs history >= 3 (x_{j-1}, x_j, x_{j+1})");
  }
  if (opts_.closed_loop) {
    if (!opts_.measure) {
      throw std::invalid_argument("ShardedParamServer: closed loop requires measurement");
    }
    control_.require_closed_loop_support("ShardedParamServer");
    // Start the feedback loop from the currently applied momentum so the
    // first updates nudge rather than jump.
    controller_ = tuner::ClosedLoopController(opts_.gamma, control_.applied());
  }

  size_ = optimizer_->arena().size();
  const std::int64_t k = std::clamp<std::int64_t>(opts_.shards, 1, size_);
  const std::int64_t base = size_ / k;
  const std::int64_t extra = size_ % k;  // first `extra` shards get one more
  std::int64_t offset = 0;
  for (std::int64_t i = 0; i < k; ++i) {
    Shard& shard = shards_.emplace_back();
    shard.lo = offset;
    shard.hi = offset + base + (i < extra ? 1 : 0);
    offset = shard.hi;
    if (opts_.measure) {
      // Fixed ring of iterate snapshots: the outer vector never grows
      // after this, and slot storage is recycled in steady state.
      shard.history.resize(static_cast<std::size_t>(opts_.history));
      const auto values = optimizer_->arena().values();
      const auto lo = static_cast<std::size_t>(shard.lo);
      shard.append(values.subspan(lo, static_cast<std::size_t>(shard.hi - shard.lo)));
    }
  }
}

const std::vector<double>* ShardedParamServer::Shard::lookup(std::int64_t v) const {
  const std::int64_t idx = v - history_base;
  if (idx < 0 || idx >= static_cast<std::int64_t>(history_count)) return nullptr;
  const std::size_t slot = (history_head + static_cast<std::size_t>(idx)) % history.size();
  return &history[slot];
}

void ShardedParamServer::Shard::append(std::span<const double> window) {
  if (history_count == history.size()) {
    // Ring full: drop the oldest version and recycle its slot (the
    // vector's capacity survives the assign below -- no allocation).
    history_head = (history_head + 1) % history.size();
    ++history_base;
    --history_count;
  }
  const std::size_t slot = (history_head + history_count) % history.size();
  history[slot].assign(window.begin(), window.end());
  ++history_count;
}

std::pair<std::int64_t, std::int64_t> ShardedParamServer::shard_range(std::size_t k) const {
  return {shards_.at(k).lo, shards_.at(k).hi};
}

std::int64_t ShardedParamServer::shard_version(std::size_t k) const {
  const Shard& shard = shards_.at(k);
  std::scoped_lock lock(shard.mu);
  return shard.version;
}

tensor::Tensor ShardedParamServer::shard_values(std::size_t k) const {
  const Shard& shard = shards_.at(k);
  return optimizer_->arena().values_window(shard.lo, shard.hi - shard.lo);
}

PullTicket ShardedParamServer::pull(std::span<double> dst) const {
  PullTicket ticket;
  pull(dst, ticket);
  return ticket;
}

void ShardedParamServer::pull(std::span<double> dst, PullTicket& ticket) const {
  if (static_cast<std::int64_t>(dst.size()) != size_) {
    throw std::invalid_argument("ShardedParamServer::pull: destination size mismatch");
  }
  ticket.versions.clear();
  ticket.versions.reserve(shards_.size());
  const auto values = optimizer_->arena().values();
  for (const Shard& shard : shards_) {
    const auto n = static_cast<std::size_t>(shard.hi - shard.lo);
    const auto lo = static_cast<std::size_t>(shard.lo);
    std::scoped_lock lock(shard.mu);
    core::copy(dst.subspan(lo, n), values.subspan(lo, n));
    ticket.versions.push_back(shard.version);
  }
}

ApplyStats ShardedParamServer::push(std::span<double> grad, const PullTicket& ticket) {
  if (static_cast<std::int64_t>(grad.size()) != size_) {
    throw std::invalid_argument("ShardedParamServer::push: gradient size mismatch");
  }
  if (ticket.versions.size() != shards_.size()) {
    throw std::invalid_argument("ShardedParamServer::push: ticket does not match shards");
  }
  // push() is the split protocol run back-to-back. The stage is
  // thread-local: pool workers are long-lived, so after the first push on
  // a thread its capacity is retained and the steady-state push performs
  // no heap allocation.
  static thread_local PushStage stage;
  try {
    begin_push(stage, grad);
    for (std::size_t k = 0; k < shards_.size(); ++k) push_shard(stage, k, grad, ticket);
    return end_push(stage);
  } catch (...) {
    stage.active = false;  // keep the thread-local reusable after a throw
    throw;
  }
}

void ShardedParamServer::begin_push(PushStage& stage, std::span<double> grad) {
  if (stage.active) {
    throw std::logic_error("ShardedParamServer::begin_push: stage already active");
  }
  if (grad.empty()) {
    // Overlapped opening: the gradient does not exist yet, so the global
    // stage must not want it.
    if (!optimizer_->grad_free_begin()) {
      throw std::logic_error(
          "ShardedParamServer::begin_push: optimizer reads the full gradient in "
          "begin_apply (grad_free_begin() is false); use push()");
    }
  } else if (static_cast<std::int64_t>(grad.size()) != size_) {
    throw std::invalid_argument("ShardedParamServer::begin_push: gradient size mismatch");
  }
  stage.pushed.assign(shards_.size(), 0);
  stage.ratios.clear();
  // One ratio per coordinate at most: reserving the full size up front
  // makes the scratch's growth a single first-push event instead of
  // scheduling-dependent reallocation.
  if (stage.ratios.capacity() < static_cast<std::size_t>(size_)) {
    stage.ratios.reserve(static_cast<std::size_t>(size_));
  }
  {
    std::scoped_lock lock(stage_mu_);
    stage.plan = optimizer_->begin_apply(grad);
  }
  stage.active = true;
}

void ShardedParamServer::push_shard(PushStage& stage, std::size_t k,
                                    std::span<const double> grad, const PullTicket& ticket) {
  if (!stage.active) throw std::logic_error("ShardedParamServer::push_shard: no active stage");
  if (k >= shards_.size() || stage.pushed[k] != 0) {
    throw std::logic_error("ShardedParamServer::push_shard: bad or repeated shard");
  }
  if (static_cast<std::int64_t>(grad.size()) != size_) {
    throw std::invalid_argument("ShardedParamServer::push_shard: gradient size mismatch");
  }
  if (ticket.versions.size() != shards_.size()) {
    throw std::invalid_argument("ShardedParamServer::push_shard: ticket does not match shards");
  }
  stage.pushed[k] = 1;

  // Per-shard stage: stage the gradient window, fused sweep, version bump,
  // history snapshot, and the Eq. 37 ratio contributions — all under that
  // shard's lock only, so disjoint shards proceed in parallel. Everything
  // here depends only on shard k's state, so shard push order is
  // irrelevant to the values produced.
  auto& arena = optimizer_->arena();
  Shard& shard = shards_[k];
  const auto lo = static_cast<std::size_t>(shard.lo);
  const auto n = static_cast<std::size_t>(shard.hi - shard.lo);
  std::scoped_lock lock(shard.mu);
  core::copy(arena.grads().subspan(lo, n), grad.subspan(lo, n));
  optimizer_->step_span(stage.plan, shard.lo, shard.hi);
  ++shard.version;
  if (!opts_.measure) return;
  shard.append(arena.values().subspan(lo, n));
  // This gradient was computed at shard iterate x_j; with x_{j+1} now
  // guaranteed to exist (we just applied an update), solve Eq. 16 for
  // mu_T elementwise wherever the history still covers j-1 .. j+1.
  const std::int64_t j = ticket.versions[k];
  if (j < 1) return;
  const auto* x_prev = shard.lookup(j - 1);
  const auto* x_read = shard.lookup(j);
  const auto* x_next = shard.lookup(j + 1);
  if (!x_prev || !x_read || !x_next) return;
  for (std::size_t i = 0; i < n; ++i) {
    const double den = (*x_read)[i] - (*x_prev)[i];
    if (std::abs(den) < opts_.denom_eps) continue;
    const double num = (*x_next)[i] - (*x_read)[i] + stage.plan.lr * grad[lo + i];
    stage.ratios.push_back(num / den);
  }
}

ApplyStats ShardedParamServer::end_push(PushStage& stage) {
  if (!stage.active) throw std::logic_error("ShardedParamServer::end_push: no active stage");
  for (const unsigned char pushed : stage.pushed) {
    if (pushed == 0) {
      throw std::logic_error("ShardedParamServer::end_push: a shard was never pushed");
    }
  }
  stage.active = false;

  // Closing global stage: advance the optimizer, fold the estimate into
  // the smoothed total momentum, and run the Algorithm 5 feedback. The
  // median is a multiset statistic, so shard completion order cannot
  // change it.
  ApplyStats stats;
  stats.applied_momentum = stage.plan.mu;
  {
    std::scoped_lock lock(stage_mu_);
    optimizer_->end_apply(stage.plan);
    stats.update_index = updates_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!stage.ratios.empty()) {
      const double estimate = median_inplace(stage.ratios);
      stats.mu_hat_total = estimate;
      smoothed_ = smoothed_init_
                      ? opts_.smooth_beta * smoothed_ + (1.0 - opts_.smooth_beta) * estimate
                      : estimate;
      smoothed_init_ = true;
      if (opts_.closed_loop) {
        control_.set_applied(controller_.update(control_.target(), estimate));
      }
    }
    stats.target_momentum = control_.target();
  }
  return stats;
}

double ShardedParamServer::smoothed_total_momentum() const {
  std::scoped_lock lock(stage_mu_);
  return smoothed_;
}

void ShardedParamServer::save_state(core::StateWriter& w) const {
  std::scoped_lock stage_lock(stage_mu_);
  w.u64(static_cast<std::uint64_t>(size_));
  w.u64(shards_.size());
  const auto values = optimizer_->arena().values();
  for (const Shard& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    w.i64(shard.lo);
    w.i64(shard.hi);
    w.i64(shard.version);
    w.f64_span(values.subspan(static_cast<std::size_t>(shard.lo),
                              static_cast<std::size_t>(shard.hi - shard.lo)));
    w.i64(shard.history_base);
    w.u64(shard.history_count);
    // Ring entries oldest -> newest; load_state rebuilds the ring with the
    // head at slot 0, which lookup() cannot distinguish from the original.
    for (std::size_t i = 0; i < shard.history_count; ++i) {
      const std::size_t slot = (shard.history_head + i) % shard.history.size();
      w.f64_span(shard.history[slot]);
    }
  }
  w.i64(updates_.load(std::memory_order_relaxed));
  w.f64(smoothed_);
  w.u8(smoothed_init_ ? 1 : 0);
  w.f64(controller_.applied_momentum());
  optimizer_->save_state(w);
}

void ShardedParamServer::load_state(core::StateReader& r) {
  std::scoped_lock stage_lock(stage_mu_);
  if (r.u64() != static_cast<std::uint64_t>(size_)) {
    throw core::StateError("ShardedParamServer: snapshot arena size differs from configuration");
  }
  if (r.u64() != shards_.size()) {
    throw core::StateError("ShardedParamServer: snapshot shard count differs from configuration");
  }
  const auto values = optimizer_->arena().values();
  for (Shard& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    const std::int64_t lo = r.i64();
    const std::int64_t hi = r.i64();
    if (lo != shard.lo || hi != shard.hi) {
      throw core::StateError("ShardedParamServer: snapshot shard geometry mismatch");
    }
    shard.version = r.i64();
    const auto width = static_cast<std::size_t>(shard.hi - shard.lo);
    r.f64_span(values.subspan(static_cast<std::size_t>(shard.lo), width));
    shard.history_base = r.i64();
    const std::uint64_t count = r.u64();
    if (count > shard.history.size()) {
      throw core::StateError("ShardedParamServer: snapshot history exceeds the configured ring");
    }
    shard.history_head = 0;
    shard.history_count = static_cast<std::size_t>(count);
    for (std::size_t i = 0; i < shard.history_count; ++i) {
      shard.history[i].resize(width);
      r.f64_span(shard.history[i]);
    }
  }
  const std::int64_t updates = r.i64();
  if (updates < 0) throw core::StateError("ShardedParamServer: negative update counter");
  updates_.store(updates, std::memory_order_relaxed);
  smoothed_ = r.f64();
  smoothed_init_ = r.u8() != 0;
  const double applied = r.f64();
  if (opts_.closed_loop) {
    // Re-seed the feedback loop at the checkpointed applied momentum; the
    // optimizer's own load below restores the matching override/target.
    controller_ = tuner::ClosedLoopController(opts_.gamma, applied);
  }
  optimizer_->load_state(r);
}

ServerRunResult run_workers(ShardedParamServer& server,
                            const std::vector<ServerWorker>& workers,
                            const ServerRunOptions& opts) {
  if (workers.empty()) throw std::invalid_argument("run_workers: no workers");
  struct PerWorker {
    std::vector<ApplyStats> stats;
    std::vector<double> losses;
  };
  std::vector<PerWorker> collected(workers.size());

  // Like the hogwild trainer before it: one pool thread per worker, since
  // workers rendezvous on the shard locks and must progress concurrently.
  auto& pool = core::ThreadPool::instance();
  pool.ensure_workers(workers.size());
  const auto& master_values = server.optimizer().arena().values_tensor();
  std::vector<std::future<void>> futures;
  futures.reserve(workers.size());
  for (std::size_t w = 0; w < workers.size(); ++w) {
    futures.push_back(pool.submit([&server, &workers, &collected, &opts, &master_values, w] {
      core::ParamArena replica(workers[w].params);
      if (replica.size() != server.size()) {
        throw std::invalid_argument("run_workers: replica size != master size");
      }
      if (replica.values_tensor().shares_storage_with(master_values)) {
        throw std::invalid_argument("run_workers: worker params alias the master arena");
      }
      // Per-replica tape: installed for this worker's whole run, so every
      // grad_fn builds (then replays) its graph out of worker-local
      // workspace memory instead of the global allocator.
      autograd::TapeScope tape_scope(workers[w].tape);
      // Backward/apply overlap: only meaningful with a tape (the hooks
      // live on it) and a grad-free opening stage (YellowFin's reads the
      // full gradient, so it falls back to the sequential push).
      const bool overlap = opts.overlap_apply && workers[w].tape != nullptr &&
                           server.optimizer().grad_free_begin();
      std::optional<WorkerOverlap> overlap_hooks;
      if (overlap) {
        overlap_hooks.emplace(server, replica, workers[w].params, *workers[w].tape);
      }
      PushStage stage;
      collected[w].stats.reserve(static_cast<std::size_t>(opts.steps_per_worker));
      collected[w].losses.reserve(static_cast<std::size_t>(opts.steps_per_worker));
      PullTicket ticket;
      for (std::int64_t s = 0; s < opts.steps_per_worker; ++s) {
        server.pull(replica.values(), ticket);
        replica.zero_grads();
        if (workers[w].tape) workers[w].tape->begin_step();
        if (overlap) {
          server.begin_push(stage);
          overlap_hooks->arm(stage, ticket);
        }
        const double loss = workers[w].grad_fn();
        if (opts.compute_delay_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(opts.compute_delay_us));
        }
        if (overlap) {
          overlap_hooks->flush();
          collected[w].stats.push_back(server.end_push(stage));
        } else {
          collected[w].stats.push_back(server.push(replica.grads(), ticket));
        }
        collected[w].losses.push_back(loss);
      }
    }));
  }
  // Drain every future before letting an exception unwind: an abandoned
  // std::future does not block in its destructor, so rethrowing from the
  // middle of the loop would destroy `collected` (and the caller's
  // server/workers references) while pool tasks still write to them.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  std::vector<std::pair<ApplyStats, double>> merged;
  merged.reserve(workers.size() * static_cast<std::size_t>(opts.steps_per_worker));
  for (const auto& per : collected) {
    for (std::size_t i = 0; i < per.stats.size(); ++i) {
      merged.emplace_back(per.stats[i], per.losses[i]);
    }
  }
  std::sort(merged.begin(), merged.end(), [](const auto& a, const auto& b) {
    return a.first.update_index < b.first.update_index;
  });

  ServerRunResult result;
  result.stats.reserve(merged.size());
  result.losses.reserve(merged.size());
  for (auto& [stats, loss] : merged) {
    result.stats.push_back(stats);
    result.losses.push_back(loss);
  }
  result.total_updates = server.updates();
  return result;
}

}  // namespace yf::async
