#include "async/param_server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "async/total_momentum.hpp"
#include "autograd/tape.hpp"
#include "core/kernels.hpp"
#include "core/parallel.hpp"

namespace yf::async {

namespace {

optim::Optimizer& checked(const std::shared_ptr<optim::Optimizer>& optimizer, const char* who) {
  if (!optimizer) throw std::invalid_argument(std::string(who) + ": null optimizer");
  return *optimizer;
}

}  // namespace

ShardedParamServer::ShardedParamServer(std::shared_ptr<optim::Optimizer> optimizer,
                                       const ParamServerOptions& opts)
    : optimizer_(std::move(optimizer)),
      control_(checked(optimizer_, "ShardedParamServer"), opts.mu_target),
      opts_(opts),
      controller_(opts.gamma) {
  if (opts_.measure && opts_.history < 3) {
    throw std::invalid_argument(
        "ShardedParamServer: measurement needs history >= 3 (x_{j-1}, x_j, x_{j+1})");
  }
  if (opts_.closed_loop) {
    if (!opts_.measure) {
      throw std::invalid_argument("ShardedParamServer: closed loop requires measurement");
    }
    control_.require_closed_loop_support("ShardedParamServer");
    // Start the feedback loop from the currently applied momentum so the
    // first updates nudge rather than jump.
    controller_ = tuner::ClosedLoopController(opts_.gamma, control_.applied());
  }

  size_ = optimizer_->arena().size();
  const std::int64_t k = std::clamp<std::int64_t>(opts_.shards, 1, size_);
  const std::int64_t base = size_ / k;
  const std::int64_t extra = size_ % k;  // first `extra` shards get one more
  std::int64_t offset = 0;
  for (std::int64_t i = 0; i < k; ++i) {
    Shard& shard = shards_.emplace_back();
    shard.lo = offset;
    shard.hi = offset + base + (i < extra ? 1 : 0);
    offset = shard.hi;
    if (opts_.measure) {
      // Fixed ring of iterate snapshots: the outer vector never grows
      // after this, and slot storage is recycled in steady state.
      shard.history.resize(static_cast<std::size_t>(opts_.history));
      const auto values = optimizer_->arena().values();
      const auto lo = static_cast<std::size_t>(shard.lo);
      shard.append(values.subspan(lo, static_cast<std::size_t>(shard.hi - shard.lo)));
    }
  }
}

const std::vector<double>* ShardedParamServer::Shard::lookup(std::int64_t v) const {
  const std::int64_t idx = v - history_base;
  if (idx < 0 || idx >= static_cast<std::int64_t>(history_count)) return nullptr;
  const std::size_t slot = (history_head + static_cast<std::size_t>(idx)) % history.size();
  return &history[slot];
}

void ShardedParamServer::Shard::append(std::span<const double> window) {
  if (history_count == history.size()) {
    // Ring full: drop the oldest version and recycle its slot (the
    // vector's capacity survives the assign below -- no allocation).
    history_head = (history_head + 1) % history.size();
    ++history_base;
    --history_count;
  }
  const std::size_t slot = (history_head + history_count) % history.size();
  history[slot].assign(window.begin(), window.end());
  ++history_count;
}

std::pair<std::int64_t, std::int64_t> ShardedParamServer::shard_range(std::size_t k) const {
  return {shards_.at(k).lo, shards_.at(k).hi};
}

std::int64_t ShardedParamServer::shard_version(std::size_t k) const {
  const Shard& shard = shards_.at(k);
  std::scoped_lock lock(shard.mu);
  return shard.version;
}

tensor::Tensor ShardedParamServer::shard_values(std::size_t k) const {
  const Shard& shard = shards_.at(k);
  return optimizer_->arena().values_window(shard.lo, shard.hi - shard.lo);
}

PullTicket ShardedParamServer::pull(std::span<double> dst) const {
  PullTicket ticket;
  pull(dst, ticket);
  return ticket;
}

void ShardedParamServer::pull(std::span<double> dst, PullTicket& ticket) const {
  if (static_cast<std::int64_t>(dst.size()) != size_) {
    throw std::invalid_argument("ShardedParamServer::pull: destination size mismatch");
  }
  ticket.versions.clear();
  ticket.versions.reserve(shards_.size());
  const auto values = optimizer_->arena().values();
  for (const Shard& shard : shards_) {
    const auto n = static_cast<std::size_t>(shard.hi - shard.lo);
    const auto lo = static_cast<std::size_t>(shard.lo);
    std::scoped_lock lock(shard.mu);
    core::copy(dst.subspan(lo, n), values.subspan(lo, n));
    ticket.versions.push_back(shard.version);
  }
}

ApplyStats ShardedParamServer::push(std::span<double> grad, const PullTicket& ticket) {
  if (static_cast<std::int64_t>(grad.size()) != size_) {
    throw std::invalid_argument("ShardedParamServer::push: gradient size mismatch");
  }
  if (ticket.versions.size() != shards_.size()) {
    throw std::invalid_argument("ShardedParamServer::push: ticket does not match shards");
  }

  // Global stage: measurement / tuning on the full (worker-side) gradient.
  optim::ApplyPlan plan;
  {
    std::scoped_lock lock(stage_mu_);
    plan = optimizer_->begin_apply(grad);
  }

  // Per-shard stage: stage the gradient window, fused sweep, version bump,
  // history snapshot, and the Eq. 37 ratio contributions — all under that
  // shard's lock only, so disjoint shards proceed in parallel.
  //
  // The ratio scratch is thread-local: pool workers are long-lived, so
  // after the first push on a thread its capacity is retained and the
  // steady-state push performs no heap allocation.
  static thread_local std::vector<double> ratios;
  ratios.clear();
  // One ratio per coordinate at most: reserving the full size up front
  // makes the scratch's growth a single first-push-per-thread event
  // instead of scheduling-dependent reallocation.
  if (ratios.capacity() < static_cast<std::size_t>(size_)) {
    ratios.reserve(static_cast<std::size_t>(size_));
  }
  auto& arena = optimizer_->arena();
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    Shard& shard = shards_[k];
    const auto lo = static_cast<std::size_t>(shard.lo);
    const auto n = static_cast<std::size_t>(shard.hi - shard.lo);
    std::scoped_lock lock(shard.mu);
    core::copy(arena.grads().subspan(lo, n), grad.subspan(lo, n));
    optimizer_->step_span(plan, shard.lo, shard.hi);
    ++shard.version;
    if (!opts_.measure) continue;
    shard.append(arena.values().subspan(lo, n));
    // This gradient was computed at shard iterate x_j; with x_{j+1} now
    // guaranteed to exist (we just applied an update), solve Eq. 16 for
    // mu_T elementwise wherever the history still covers j-1 .. j+1.
    const std::int64_t j = ticket.versions[k];
    if (j < 1) continue;
    const auto* x_prev = shard.lookup(j - 1);
    const auto* x_read = shard.lookup(j);
    const auto* x_next = shard.lookup(j + 1);
    if (!x_prev || !x_read || !x_next) continue;
    for (std::size_t i = 0; i < n; ++i) {
      const double den = (*x_read)[i] - (*x_prev)[i];
      if (std::abs(den) < opts_.denom_eps) continue;
      const double num = (*x_next)[i] - (*x_read)[i] + plan.lr * grad[lo + i];
      ratios.push_back(num / den);
    }
  }

  // Closing global stage: advance the optimizer, fold the estimate into
  // the smoothed total momentum, and run the Algorithm 5 feedback.
  ApplyStats stats;
  stats.applied_momentum = plan.mu;
  {
    std::scoped_lock lock(stage_mu_);
    optimizer_->end_apply(plan);
    stats.update_index = updates_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!ratios.empty()) {
      const double estimate = median_inplace(ratios);
      stats.mu_hat_total = estimate;
      smoothed_ = smoothed_init_
                      ? opts_.smooth_beta * smoothed_ + (1.0 - opts_.smooth_beta) * estimate
                      : estimate;
      smoothed_init_ = true;
      if (opts_.closed_loop) {
        control_.set_applied(controller_.update(control_.target(), estimate));
      }
    }
    stats.target_momentum = control_.target();
  }
  return stats;
}

double ShardedParamServer::smoothed_total_momentum() const {
  std::scoped_lock lock(stage_mu_);
  return smoothed_;
}

ServerRunResult run_workers(ShardedParamServer& server,
                            const std::vector<ServerWorker>& workers,
                            const ServerRunOptions& opts) {
  if (workers.empty()) throw std::invalid_argument("run_workers: no workers");
  struct PerWorker {
    std::vector<ApplyStats> stats;
    std::vector<double> losses;
  };
  std::vector<PerWorker> collected(workers.size());

  // Like the hogwild trainer before it: one pool thread per worker, since
  // workers rendezvous on the shard locks and must progress concurrently.
  auto& pool = core::ThreadPool::instance();
  pool.ensure_workers(workers.size());
  const auto& master_values = server.optimizer().arena().values_tensor();
  std::vector<std::future<void>> futures;
  futures.reserve(workers.size());
  for (std::size_t w = 0; w < workers.size(); ++w) {
    futures.push_back(pool.submit([&server, &workers, &collected, &opts, &master_values, w] {
      core::ParamArena replica(workers[w].params);
      if (replica.size() != server.size()) {
        throw std::invalid_argument("run_workers: replica size != master size");
      }
      if (replica.values_tensor().shares_storage_with(master_values)) {
        throw std::invalid_argument("run_workers: worker params alias the master arena");
      }
      // Per-replica tape: installed for this worker's whole run, so every
      // grad_fn builds (then replays) its graph out of worker-local
      // workspace memory instead of the global allocator.
      autograd::TapeScope tape_scope(workers[w].tape);
      collected[w].stats.reserve(static_cast<std::size_t>(opts.steps_per_worker));
      collected[w].losses.reserve(static_cast<std::size_t>(opts.steps_per_worker));
      PullTicket ticket;
      for (std::int64_t s = 0; s < opts.steps_per_worker; ++s) {
        server.pull(replica.values(), ticket);
        replica.zero_grads();
        if (workers[w].tape) workers[w].tape->begin_step();
        const double loss = workers[w].grad_fn();
        if (opts.compute_delay_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(opts.compute_delay_us));
        }
        collected[w].stats.push_back(server.push(replica.grads(), ticket));
        collected[w].losses.push_back(loss);
      }
    }));
  }
  // Drain every future before letting an exception unwind: an abandoned
  // std::future does not block in its destructor, so rethrowing from the
  // middle of the loop would destroy `collected` (and the caller's
  // server/workers references) while pool tasks still write to them.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  std::vector<std::pair<ApplyStats, double>> merged;
  merged.reserve(workers.size() * static_cast<std::size_t>(opts.steps_per_worker));
  for (const auto& per : collected) {
    for (std::size_t i = 0; i < per.stats.size(); ++i) {
      merged.emplace_back(per.stats[i], per.losses[i]);
    }
  }
  std::sort(merged.begin(), merged.end(), [](const auto& a, const auto& b) {
    return a.first.update_index < b.first.update_index;
  });

  ServerRunResult result;
  result.stats.reserve(merged.size());
  result.losses.reserve(merged.size());
  for (auto& [stats, loss] : merged) {
    result.stats.push_back(stats);
    result.losses.push_back(loss);
  }
  result.total_updates = server.updates();
  return result;
}

}  // namespace yf::async
