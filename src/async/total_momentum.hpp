// Total-momentum estimator mu_hat_T (Eq. 37).
//
// Models the running system as E[x_{t+1} - x_t] = mu_T E[x_t - x_{t-1}]
// - alpha E grad f(x_t) (Eq. 16) and solves for mu_T elementwise at the
// most recent index whose own-iterate gradient is causally available
// (tau steps back under staleness tau):
//
//   mu_hat_T = median_j ( (x_{i+1} - x_i + alpha_i * g_i)_j
//                         / (x_i - x_{i-1})_j ),   i = t - tau - 1,
//
// where g_i is the stochastic gradient evaluated AT iterate x_i. The
// elementwise median makes the estimate robust to coordinates with tiny
// iterate movement; coordinates with |denominator| < eps are skipped.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace yf::async {

class TotalMomentumEstimator {
 public:
  /// `staleness` = tau (0 for synchronous training).
  explicit TotalMomentumEstimator(std::int64_t staleness, double denom_eps = 1e-10);

  /// Record one server step: the iterate BEFORE the update, the stochastic
  /// gradient evaluated at that same iterate, and the learning rate in
  /// effect. Call exactly once per optimization step, before the update.
  void record(const tensor::Tensor& iterate, const tensor::Tensor& grad_at_iterate,
              double alpha);

  /// Latest mu_hat_T; nullopt until enough history exists (tau + 3 records)
  /// or when every coordinate's denominator underflows.
  std::optional<double> estimate() const;

  /// Running average of estimates (the solid red line in Fig. 4).
  double smoothed(double beta = 0.9);

  std::int64_t staleness() const { return staleness_; }

 private:
  struct Record {
    tensor::Tensor x;
    tensor::Tensor g;
    double alpha;
  };
  std::int64_t staleness_;
  double denom_eps_;
  std::deque<Record> history_;
  double smoothed_value_ = 0.0;
  bool smoothed_init_ = false;
};

/// Median of a (non-empty) vector; averages the two middle elements for
/// even sizes. Utility shared with tests.
double median(std::vector<double> values);

/// Same selection, reordering `values` in place instead of copying --
/// the parameter server's push path reuses one scratch buffer per
/// thread, so the hot path must not allocate.
double median_inplace(std::span<double> values);

}  // namespace yf::async
