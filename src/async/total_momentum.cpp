#include "async/total_momentum.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace yf::async {

double median_inplace(std::span<double> values) {
  if (values.empty()) throw std::invalid_argument("median: empty input");
  const auto mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  double m = values[mid];
  if (values.size() % 2 == 0) {
    const auto lower =
        *std::max_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
    m = 0.5 * (m + lower);
  }
  return m;
}

double median(std::vector<double> values) { return median_inplace(values); }

TotalMomentumEstimator::TotalMomentumEstimator(std::int64_t staleness, double denom_eps)
    : staleness_(staleness), denom_eps_(denom_eps) {
  if (staleness < 0) throw std::invalid_argument("TotalMomentumEstimator: staleness >= 0");
}

void TotalMomentumEstimator::record(const tensor::Tensor& iterate,
                                    const tensor::Tensor& grad_at_iterate, double alpha) {
  history_.push_back({iterate.clone(), grad_at_iterate.clone(), alpha});
  // Need records at indices i-1, i, i+1 with i = newest - 1 - tau.
  const std::size_t needed = static_cast<std::size_t>(staleness_) + 3;
  while (history_.size() > needed) history_.pop_front();
}

std::optional<double> TotalMomentumEstimator::estimate() const {
  const std::size_t needed = static_cast<std::size_t>(staleness_) + 3;
  if (history_.size() < needed) return std::nullopt;
  // history_ holds x_{i-1} .. x_{t} with i-1 at the front. The estimation
  // index i is the second record; x_{i+1} the third.
  const Record& prev = history_[0];   // x_{i-1}
  const Record& cur = history_[1];    // x_i, g_i, alpha_i
  const Record& next = history_[2];   // x_{i+1}
  std::vector<double> ratios;
  ratios.reserve(static_cast<std::size_t>(cur.x.size()));
  for (std::int64_t j = 0; j < cur.x.size(); ++j) {
    const double den = cur.x[j] - prev.x[j];
    if (std::abs(den) < denom_eps_) continue;
    const double num = next.x[j] - cur.x[j] + cur.alpha * cur.g[j];
    ratios.push_back(num / den);
  }
  if (ratios.empty()) return std::nullopt;
  return median(std::move(ratios));
}

double TotalMomentumEstimator::smoothed(double beta) {
  const auto est = estimate();
  if (est) {
    if (!smoothed_init_) {
      smoothed_value_ = *est;
      smoothed_init_ = true;
    } else {
      smoothed_value_ = beta * smoothed_value_ + (1.0 - beta) * (*est);
    }
  }
  return smoothed_value_;
}

}  // namespace yf::async
