// Deterministic asynchronous-training simulator (Section 5.2 protocol).
//
// Reproduces "16 asynchronous workers updating the model in round-robin
// fashion, i.e. the gradient is delayed for 15 iterations": each step
// computes a gradient at the *current* iterate, enqueues it, and applies
// the gradient that is now `staleness` steps old. Single-threaded, so runs
// are exactly reproducible per seed; a real multi-threaded engine lives in
// async/threaded_trainer for integration testing.
//
// Optionally closes the momentum loop (Algorithm 5) when driving a
// YellowFin optimizer: measured total momentum feeds the negative
// feedback controller, which overrides the applied algorithmic momentum.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "async/staleness_queue.hpp"
#include "async/total_momentum.hpp"
#include "optim/optimizer.hpp"
#include "tuner/closed_loop.hpp"
#include "tuner/yellowfin.hpp"

namespace yf::async {

/// Computes the minibatch loss at the current parameter values and leaves
/// gradients on the parameters; returns the loss.
using GradFn = std::function<double()>;

struct AsyncTrainerOptions {
  std::int64_t staleness = 15;  ///< tau = workers - 1
  /// Algorithm 5. Requires a YellowFin optimizer (target = its tuned
  /// momentum) or a MomentumSGD plus an explicit `mu_target` — the same
  /// contract as the sharded parameter server (async/param_server).
  bool closed_loop = false;
  double gamma = 0.01;  ///< feedback gain
  /// Fixed total-momentum target; overrides the tuner's target when set.
  std::optional<double> mu_target;
};

struct AsyncStepStats {
  double loss = 0.0;                     ///< loss at the gradient-computation point
  bool applied_update = false;           ///< false while the pipeline fills
  std::optional<double> mu_hat_total;    ///< latest mu_hat_T estimate
  double applied_momentum = 0.0;         ///< algorithmic momentum used this step
  double target_momentum = 0.0;          ///< tuner's target (YellowFin only)
};

class AsyncTrainer {
 public:
  AsyncTrainer(std::shared_ptr<optim::Optimizer> optimizer, GradFn grad_fn,
               const AsyncTrainerOptions& opts);

  /// One simulated server step.
  AsyncStepStats step();

  const TotalMomentumEstimator& estimator() const { return estimator_; }
  const tuner::ClosedLoopController& controller() const { return controller_; }

 private:
  std::shared_ptr<optim::Optimizer> optimizer_;
  /// Resolves the Algorithm 5 knobs (target / applied momentum) — the
  /// same tuner::MomentumControl contract as the sharded server.
  tuner::MomentumControl control_;
  GradFn grad_fn_;
  AsyncTrainerOptions opts_;
  StalenessQueue<tensor::Tensor> queue_;
  TotalMomentumEstimator estimator_;
  tuner::ClosedLoopController controller_;
};

}  // namespace yf::async
