// Sharded parameter server: the real-asynchrony training engine
// (DESIGN.md §5).
//
// Partitions an optimizer's core::ParamArena into K contiguous shards.
// Each shard owns a lock, a version counter (number of gradient
// applications it has absorbed), and a short iterate history. Workers run
// on the shared core::parallel pool against their own model replicas:
//
//   ticket = pull(replica values)    per-shard locked copy of the master
//                                    values; records each shard's version
//   ... compute gradient on the replica (forward/backward, oracle, ...)
//   stats = push(replica grads, ticket)
//
// push() decomposes one application into the optimizer's sharded protocol
// (optim::ApplyPlan): a global measure/tune stage under the server's
// stage lock (YellowFin clips and retunes here), then one fused
// `step_span` per shard under that shard's lock — so two workers can be
// applying different gradients to different shards at the same time, and
// staleness is emergent rather than scripted.
//
// Total-momentum measurement (Eq. 37) hooks into the same shard locks:
// each shard keeps its last `history` iterate snapshots keyed by version.
// A pushed gradient was computed at per-shard versions j (the ticket), so
// the elementwise ratios
//
//   (x_{j+1} - x_j + alpha g)_i / (x_j - x_{j-1})_i
//
// are exact per shard; the median over all shards' coordinates is this
// push's mu_hat_T. With closed_loop on, the estimate feeds the
// tuner::ClosedLoopController (Algorithm 5) which overrides the applied
// algorithmic momentum — YellowFin's feedback loop under real threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "optim/optimizer.hpp"
#include "tensor/tensor.hpp"
#include "tuner/closed_loop.hpp"

namespace yf::autograd {
class GraphTape;
}

namespace yf::async {

struct ParamServerOptions {
  std::int64_t shards = 4;  ///< clamped to [1, arena size]
  /// Keep per-shard iterate history and estimate mu_hat_T on every push.
  bool measure = true;
  std::int64_t history = 64;  ///< retained iterate versions per shard (>= 3)
  double denom_eps = 1e-10;   ///< skip coordinates with tinier movement
  /// Algorithm 5: feed mu_hat_T back into the applied momentum. Requires
  /// `measure` and a YellowFin optimizer (target = its tuned momentum) or
  /// a MomentumSGD plus an explicit `mu_target`.
  bool closed_loop = false;
  double gamma = 0.01;               ///< feedback gain
  std::optional<double> mu_target;   ///< closed-loop target for MomentumSGD
  double smooth_beta = 0.95;         ///< EWMA on mu_hat (Fig. 4 solid line)
};

/// Per-shard versions observed by a pull; pairs a gradient with the
/// iterates it was computed against.
struct PullTicket {
  std::vector<std::int64_t> versions;
};

struct ApplyStats {
  std::int64_t update_index = 0;  ///< 1-based order of this application
  std::optional<double> mu_hat_total;
  double applied_momentum = 0.0;  ///< algorithmic momentum used this push
  double target_momentum = 0.0;   ///< tuner target (or mu_target)
};

/// Worker-owned state for a split ("overlapped") push: the plan captured
/// by begin_push, which shards this push has applied, and the Eq. 37
/// ratio scratch. Reused across steps -- all capacity is retained, so a
/// worker's steady-state overlapped push touches no heap. Not
/// thread-safe: concurrent push_shard calls on the SAME stage must be
/// externally serialized (a worker replica's backward engine runs its
/// completion hooks inline, so the harness never needs to).
struct PushStage {
  optim::ApplyPlan plan{};
  std::vector<unsigned char> pushed;  ///< per shard, this push
  std::vector<double> ratios;         ///< Eq. 37 contributions, across shards
  bool active = false;
};

class ShardedParamServer {
 public:
  explicit ShardedParamServer(std::shared_ptr<optim::Optimizer> optimizer,
                              const ParamServerOptions& opts = {});

  /// Total scalars served (the arena size).
  std::int64_t size() const { return size_; }
  std::int64_t shard_count() const { return static_cast<std::int64_t>(shards_.size()); }
  /// [lo, hi) scalar range of shard k.
  std::pair<std::int64_t, std::int64_t> shard_range(std::size_t k) const;
  /// Number of gradient applications shard k has absorbed.
  std::int64_t shard_version(std::size_t k) const;
  /// Rank-1 view aliasing shard k's window of the master value buffer.
  tensor::Tensor shard_values(std::size_t k) const;

  /// Copy the master parameters into `dst` (size() scalars), shard by
  /// shard under the shard locks; returns the per-shard versions read.
  PullTicket pull(std::span<double> dst) const;

  /// Allocation-free pull: refills `ticket` in place (its capacity is
  /// retained across steps, so a worker's steady-state pull touches no
  /// heap). Semantically identical to the returning overload.
  void pull(std::span<double> dst, PullTicket& ticket) const;

  /// Apply one worker gradient (size() scalars, computed at the iterates
  /// `ticket` describes). `grad` may be clipped in place by the
  /// optimizer's global stage. Thread-safe; blocks only per shard.
  ApplyStats push(std::span<double> grad, const PullTicket& ticket);

  // -- Split push (backward/apply overlap, DESIGN.md §10). -------------------
  //
  // The three stages of push() exposed individually, so a worker can
  // apply a shard the moment its own backward pass finishes that shard's
  // gradients -- while the rest of backward is still draining:
  //
  //   begin_push(stage)              opening global stage; with an empty
  //                                  `grad` it runs BEFORE the gradient is
  //                                  complete, which requires an optimizer
  //                                  whose grad_free_begin() is true
  //   push_shard(stage, k, g, t)     stage + fused sweep for shard k; only
  //                                  g's [shard k] window must be final.
  //                                  Any shard order, each exactly once.
  //   stats = end_push(stage)        closing global stage: Eq. 37 median,
  //                                  smoothing, Algorithm 5 feedback
  //
  // The Eq. 37 median and every per-shard stage are shard-order-
  // invariant, so a full sequence is bit-equivalent to push() (modulo
  // grad-reading begin stages, which begin_push refuses without a full
  // gradient). One stage object per in-flight push.
  void begin_push(PushStage& stage, std::span<double> grad = {});
  void push_shard(PushStage& stage, std::size_t k, std::span<const double> grad,
                  const PullTicket& ticket);
  ApplyStats end_push(PushStage& stage);

  /// Total gradients applied so far.
  std::int64_t updates() const { return updates_.load(std::memory_order_relaxed); }
  /// EWMA of mu_hat_T estimates (0 until the first estimate).
  double smoothed_total_momentum() const;

  /// Serialize/restore the full server state bit-exactly for
  /// checkpoint/restore (DESIGN.md §14): master values, per-shard
  /// versions and iterate-history rings, the update counter, the Eq. 37
  /// smoothing state, the controller's applied momentum, and the
  /// optimizer's own save_state. Geometry and options are configuration;
  /// load_state validates them against this instance and throws
  /// core::StateError on mismatch. Both take the stage lock and each
  /// shard lock for race-free byte access, but callers must quiesce
  /// in-flight pushes for a consistent cut (the dist master serializes
  /// checkpoints against pushes with its own lock).
  void save_state(core::StateWriter& w) const;
  void load_state(core::StateReader& r);

  const tuner::ClosedLoopController& controller() const { return controller_; }
  optim::Optimizer& optimizer() { return *optimizer_; }
  const optim::Optimizer& optimizer() const { return *optimizer_; }
  const ParamServerOptions& options() const { return opts_; }

 private:
  struct Shard {
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    mutable std::mutex mu;
    std::int64_t version = 0;
    /// Iterate snapshots of this shard's window, held in a fixed ring so
    /// the steady-state push recycles slot storage instead of allocating:
    /// logical versions [history_base, history_base + history_count), the
    /// oldest at ring index history_head.
    std::int64_t history_base = 0;
    std::size_t history_head = 0;
    std::size_t history_count = 0;
    std::vector<std::vector<double>> history;  ///< ring, capacity = opts.history

    const std::vector<double>* lookup(std::int64_t version) const;
    void append(std::span<const double> window);
  };

  std::shared_ptr<optim::Optimizer> optimizer_;
  /// Resolves the Algorithm 5 knobs (target / applied momentum) — the
  /// same tuner::MomentumControl contract as the async simulator. Only
  /// touched under stage_mu_ once workers are running.
  tuner::MomentumControl control_;
  ParamServerOptions opts_;
  std::int64_t size_ = 0;
  std::deque<Shard> shards_;  ///< deque: Shard holds a mutex (immovable)
  /// Serializes the optimizer's global stages (begin/end_apply), the
  /// controller, and the smoothed estimate.
  mutable std::mutex stage_mu_;
  std::atomic<std::int64_t> updates_{0};
  tuner::ClosedLoopController controller_;
  double smoothed_ = 0.0;
  bool smoothed_init_ = false;
};

// ---------------------------------------------------------------------------
// Worker harness: run replicas against a server on the shared thread pool.
// ---------------------------------------------------------------------------

/// A worker's model replica: parameters with the same total size as the
/// master (they are flattened into a worker-local arena) plus a gradient
/// closure that computes a minibatch loss and leaves gradients on them.
struct ServerWorker {
  std::vector<autograd::Variable> params;
  std::function<double()> grad_fn;
  /// Optional per-replica autograd tape: run_workers installs it on the
  /// worker's pool thread and begins a tape step before every grad_fn
  /// call, so each replica replays its cached graph out of its own
  /// workspace instead of contending on the global allocator. Owned by
  /// the caller; one tape must not be shared between workers.
  autograd::GraphTape* tape = nullptr;
};

struct ServerRunOptions {
  std::int64_t steps_per_worker = 100;
  /// Microseconds of simulated gradient latency between pull and push; on
  /// toy problems the gradient is so fast that pushes serialize and no
  /// staleness emerges (same knob as the old hogwild trainer).
  std::int64_t compute_delay_us = 0;
  /// Overlap gradient application with backward: workers with a tape use
  /// the split push protocol, pushing each server shard as soon as every
  /// replica parameter overlapping it has a final gradient (tape
  /// completion hooks). Silently falls back to sequential push() for
  /// tape-less workers or optimizers whose begin_apply reads the full
  /// gradient (YellowFin).
  bool overlap_apply = false;
};

struct ServerRunResult {
  std::vector<ApplyStats> stats;  ///< sorted by update_index (1-based)
  std::vector<double> losses;     ///< losses[i]: loss of stats[i]'s gradient
  std::int64_t total_updates = 0;
};

/// Run every worker for `steps_per_worker` pull/compute/push rounds on the
/// shared pool. Worker parameters must not alias the master arena.
ServerRunResult run_workers(ShardedParamServer& server,
                            const std::vector<ServerWorker>& workers,
                            const ServerRunOptions& opts = {});

}  // namespace yf::async
