#include "async/staleness_queue.hpp"

#include <string>

namespace yf::async::detail {

ChannelSync::ChannelSync(std::int64_t staleness, std::int64_t capacity)
    : staleness_(staleness), capacity_(capacity) {
  if (staleness < 0) {
    throw std::invalid_argument("BlockingStalenessQueue: staleness must be >= 0");
  }
  if (capacity <= staleness) {
    throw std::invalid_argument(
        "BlockingStalenessQueue: capacity must exceed staleness (capacity " +
        std::to_string(capacity) + " vs staleness " + std::to_string(staleness) + ")");
  }
}

bool ChannelSync::begin_push() {
  std::unique_lock lock(mu_);
  slot_free_.wait(lock, [&] { return closed_ || reserved_ < capacity_; });
  if (closed_) return false;
  ++reserved_;
  return true;
}

void ChannelSync::commit_push() {
  {
    std::scoped_lock lock(mu_);
    ++committed_;
  }
  entry_ready_.notify_one();
}

bool ChannelSync::begin_pop() {
  std::unique_lock lock(mu_);
  // After close, drain every entry -- including pushes that reserved a
  // slot before close but have not committed yet (reserved_ > committed_):
  // their push() will return true, so the value must reach a consumer.
  entry_ready_.wait(lock, [&] {
    if (closed_) return committed_ > 0 || reserved_ == 0;
    return committed_ > staleness_;
  });
  if (committed_ == 0) return false;  // closed and fully drained
  --committed_;
  return true;
}

void ChannelSync::commit_pop() {
  {
    std::scoped_lock lock(mu_);
    --reserved_;
  }
  slot_free_.notify_one();
  // Other consumers may be waiting out the closed-drain predicate
  // (committed_ > 0 || reserved_ == 0): reaching reserved_ == 0 here is
  // their wake-up signal, not just the producers'.
  entry_ready_.notify_all();
}

void ChannelSync::close() {
  {
    std::scoped_lock lock(mu_);
    closed_ = true;
  }
  slot_free_.notify_all();
  entry_ready_.notify_all();
}

std::int64_t ChannelSync::size() const {
  std::scoped_lock lock(mu_);
  return committed_;
}

bool ChannelSync::closed() const {
  std::scoped_lock lock(mu_);
  return closed_;
}

}  // namespace yf::async::detail
