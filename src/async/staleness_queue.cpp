#include "async/staleness_queue.hpp"

// Header-only template; TU anchors the target in the build graph.
