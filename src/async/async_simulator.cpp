#include "async/async_simulator.hpp"

#include <stdexcept>
#include <string>

#include "core/kernels.hpp"
#include "nn/module.hpp"

namespace yf::async {

namespace {

optim::Optimizer& checked(const std::shared_ptr<optim::Optimizer>& optimizer, const char* who) {
  if (!optimizer) throw std::invalid_argument(std::string(who) + ": null optimizer");
  return *optimizer;
}

}  // namespace

AsyncTrainer::AsyncTrainer(std::shared_ptr<optim::Optimizer> optimizer, GradFn grad_fn,
                           const AsyncTrainerOptions& opts)
    : optimizer_(std::move(optimizer)),
      control_(checked(optimizer_, "AsyncTrainer"), opts.mu_target),
      grad_fn_(std::move(grad_fn)),
      opts_(opts),
      queue_(opts.staleness),
      estimator_(opts.staleness),
      controller_(opts.gamma) {
  if (opts_.closed_loop) {
    control_.require_closed_loop_support("AsyncTrainer");
    // Start the feedback from the currently applied momentum.
    controller_ = tuner::ClosedLoopController(opts_.gamma, control_.applied());
  }
}

AsyncStepStats AsyncTrainer::step() {
  AsyncStepStats stats;
  auto& params = const_cast<std::vector<autograd::Variable>&>(optimizer_->params());

  // Worker view: gradient at the current iterate.
  optimizer_->zero_grad();
  stats.loss = grad_fn_();
  tensor::Tensor flat_grad = nn::flatten_grads(params);
  tensor::Tensor iterate = nn::flatten_values(params);
  estimator_.record(iterate, flat_grad, optimizer_->lr());

  // Server view: apply the gradient that is `staleness` steps old.
  auto delayed = queue_.push(std::move(flat_grad));
  if (delayed) {
    std::int64_t off = 0;
    for (auto& p : params) {
      auto g = p.node()->ensure_grad().data();
      core::copy(g, delayed->data().subspan(static_cast<std::size_t>(off), g.size()));
      off += static_cast<std::int64_t>(g.size());
    }
    // Closed-loop momentum control (Algorithm 5): adjust applied momentum
    // before the update so mu_hat_T tracks the target.
    stats.mu_hat_total = estimator_.estimate();
    if (opts_.closed_loop && stats.mu_hat_total) {
      control_.set_applied(controller_.update(control_.target(), *stats.mu_hat_total));
    }
    optimizer_->step();
    stats.applied_update = true;
  }

  stats.target_momentum = control_.target();
  stats.applied_momentum =
      opts_.closed_loop ? controller_.applied_momentum() : control_.applied();
  return stats;
}

}  // namespace yf::async
