#include "async/async_simulator.hpp"

#include <stdexcept>

#include "core/kernels.hpp"
#include "nn/module.hpp"

namespace yf::async {

AsyncTrainer::AsyncTrainer(std::shared_ptr<optim::Optimizer> optimizer, GradFn grad_fn,
                           const AsyncTrainerOptions& opts)
    : optimizer_(std::move(optimizer)),
      yellowfin_(dynamic_cast<tuner::YellowFin*>(optimizer_.get())),
      grad_fn_(std::move(grad_fn)),
      opts_(opts),
      queue_(opts.staleness),
      estimator_(opts.staleness),
      controller_(opts.gamma) {
  if (!optimizer_) throw std::invalid_argument("AsyncTrainer: null optimizer");
  if (opts_.closed_loop && !yellowfin_) {
    throw std::invalid_argument("AsyncTrainer: closed loop requires a YellowFin optimizer");
  }
}

AsyncStepStats AsyncTrainer::step() {
  AsyncStepStats stats;
  auto& params = const_cast<std::vector<autograd::Variable>&>(optimizer_->params());

  // Worker view: gradient at the current iterate.
  optimizer_->zero_grad();
  stats.loss = grad_fn_();
  tensor::Tensor flat_grad = nn::flatten_grads(params);
  tensor::Tensor iterate = nn::flatten_values(params);
  estimator_.record(iterate, flat_grad, optimizer_->lr());

  // Server view: apply the gradient that is `staleness` steps old.
  auto delayed = queue_.push(std::move(flat_grad));
  if (delayed) {
    std::int64_t off = 0;
    for (auto& p : params) {
      auto g = p.node()->ensure_grad().data();
      core::copy(g, delayed->data().subspan(static_cast<std::size_t>(off), g.size()));
      off += static_cast<std::int64_t>(g.size());
    }
    // Closed-loop momentum control (Algorithm 5): adjust applied momentum
    // before the update so mu_hat_T tracks the tuner's target.
    stats.mu_hat_total = estimator_.estimate();
    if (opts_.closed_loop && stats.mu_hat_total) {
      const double mu = controller_.update(yellowfin_->momentum(), *stats.mu_hat_total);
      yellowfin_->set_applied_momentum(mu);
    }
    optimizer_->step();
    stats.applied_update = true;
  }

  if (yellowfin_) {
    stats.target_momentum = yellowfin_->momentum();
    stats.applied_momentum =
        opts_.closed_loop ? controller_.applied_momentum() : yellowfin_->momentum();
  }
  return stats;
}

}  // namespace yf::async
