// Real multi-threaded hogwild-style trainer over a flat parameter vector.
//
// Complements the deterministic AsyncTrainer: here genuine OS threads race
// on a mutex-guarded parameter server, so staleness is emergent rather
// than scripted. Used by the integration tests to confirm the
// "asynchrony begets momentum" effect (total momentum above algorithmic
// momentum) on a real concurrent system, not just the round-robin model.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace yf::async {

/// Stochastic gradient oracle: gradient of a minibatch loss at `x`.
using GradOracle = std::function<tensor::Tensor(const tensor::Tensor& x, tensor::Rng& rng)>;

struct ThreadedTrainerOptions {
  std::int64_t workers = 4;
  std::int64_t steps_per_worker = 100;
  double lr = 0.01;
  double momentum = 0.0;  ///< algorithmic momentum at the server
  std::uint64_t seed = 0;
  /// Microseconds of simulated gradient-computation latency between a
  /// worker's read and write. On toy problems the oracle is so fast that
  /// updates serialize and no staleness arises; a small delay restores the
  /// read-compute-write overlap of a real training system.
  std::int64_t compute_delay_us = 0;
};

struct ThreadedTrainerResult {
  tensor::Tensor final_x;
  /// Per-update mu_hat_T estimates (skipping warm-up); empty if dim too
  /// small for reliable medians.
  std::vector<double> total_momentum_estimates;
  std::int64_t total_updates = 0;
};

/// Run hogwild momentum SGD from `x0`; returns final iterate and the
/// total-momentum measurements taken at the server.
ThreadedTrainerResult run_threaded_training(const tensor::Tensor& x0, const GradOracle& oracle,
                                            const ThreadedTrainerOptions& opts);

}  // namespace yf::async
