// Real multi-threaded trainer over a flat parameter vector: a thin
// adapter over the sharded parameter server (async/param_server).
//
// Complements the deterministic AsyncTrainer: genuine OS threads race on
// the server's shard locks, so staleness is emergent rather than
// scripted. Each worker holds its own replica of the parameter vector,
// pulls the master values, evaluates the gradient oracle against the
// snapshot, and pushes the result; the server measures total momentum
// (Eq. 37) on every push. Used by the integration tests to confirm the
// "asynchrony begets momentum" effect on a real concurrent system, not
// just the round-robin model.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace yf::async {

/// Stochastic gradient oracle: gradient of a minibatch loss at `x`.
using GradOracle = std::function<tensor::Tensor(const tensor::Tensor& x, tensor::Rng& rng)>;

struct ThreadedTrainerOptions {
  std::int64_t workers = 4;
  std::int64_t steps_per_worker = 100;
  double lr = 0.01;
  double momentum = 0.0;  ///< algorithmic momentum at the server
  std::uint64_t seed = 0;
  /// Microseconds of simulated gradient-computation latency between a
  /// worker's read and write. On toy problems the oracle is so fast that
  /// updates serialize and no staleness arises; a small delay restores the
  /// read-compute-write overlap of a real training system.
  std::int64_t compute_delay_us = 0;
  /// Server shards. 1 reproduces the historical single-lock hogwild
  /// server; more shards let pulls and pushes interleave per window.
  std::int64_t shards = 1;
};

struct ThreadedTrainerResult {
  tensor::Tensor final_x;
  /// Per-push mu_hat_T estimates in server apply order (skipping pushes
  /// whose shard history was insufficient or whose denominators
  /// underflowed).
  std::vector<double> total_momentum_estimates;
  std::int64_t total_updates = 0;
};

/// Run sharded-server momentum SGD from `x0`; returns the final iterate
/// and the total-momentum measurements taken at the server.
ThreadedTrainerResult run_threaded_training(const tensor::Tensor& x0, const GradOracle& oracle,
                                            const ThreadedTrainerOptions& opts);

}  // namespace yf::async
