// Staleness queues: the round-robin delay model and a bounded blocking
// channel for real producer/consumer pipelines.
//
// `StalenessQueue` models M round-robin workers exactly: with tau = M - 1,
// the gradient applied at step t was computed against the model at step
// t - tau (Section 5.2 protocol). Pushing the gradient computed at the
// current iterate and popping once the queue holds tau+1 entries
// reproduces that, single-threaded and deterministic.
//
// `BlockingStalenessQueue` carries the same delay semantics onto real
// threads: producers block once `capacity` gradients are in flight
// (bounding memory and pipeline depth), consumers block until an entry is
// at least `staleness` steps old, and `close()` drains the pipeline. The
// synchronization core (detail::ChannelSync) is non-template and lives in
// staleness_queue.cpp.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

namespace yf::async {

template <typename T>
class StalenessQueue {
 public:
  explicit StalenessQueue(std::int64_t staleness) : staleness_(staleness) {
    if (staleness < 0) throw std::invalid_argument("StalenessQueue: staleness must be >= 0");
  }

  /// Push the value produced at the current step; returns the value that is
  /// now `staleness` steps old, once the pipeline is full.
  std::optional<T> push(T value) {
    queue_.push_back(std::move(value));
    if (static_cast<std::int64_t>(queue_.size()) > staleness_) {
      T out = std::move(queue_.front());
      queue_.pop_front();
      return out;
    }
    return std::nullopt;
  }

  std::int64_t staleness() const { return staleness_; }
  std::size_t pending() const { return queue_.size(); }

 private:
  std::int64_t staleness_;
  std::deque<T> queue_;
};

namespace detail {

/// Non-template synchronization core of BlockingStalenessQueue: tracks the
/// in-flight count, blocks producers at capacity and consumers until an
/// entry is older than the staleness bound (or the channel is closed).
class ChannelSync {
 public:
  ChannelSync(std::int64_t staleness, std::int64_t capacity);

  /// Block until a slot is free or the channel closes. On success the slot
  /// is reserved; returns false when closed. Consumers only see the entry
  /// after commit_push, so the payload can land outside this lock.
  bool begin_push();
  /// Publish a reserved entry to consumers.
  void commit_push();
  /// Block until an entry at least `staleness` steps old is committed, or
  /// the channel is closed and non-empty (drain). On success the entry is
  /// claimed; returns false when closed and drained.
  bool begin_pop();
  /// Release the claimed entry's slot to producers (payload removed).
  void commit_pop();

  /// No further pushes; consumers drain the remaining entries regardless
  /// of their age, then begin_pop returns false.
  void close();

  std::int64_t size() const;
  bool closed() const;
  std::int64_t staleness() const { return staleness_; }
  std::int64_t capacity() const { return capacity_; }

 private:
  const std::int64_t staleness_;
  const std::int64_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  std::condition_variable entry_ready_;
  std::int64_t reserved_ = 0;   ///< slots held by producers (>= committed_)
  std::int64_t committed_ = 0;  ///< entries visible to consumers
  bool closed_ = false;
};

}  // namespace detail

/// Thread-safe bounded FIFO with staleness-delay semantics (see header
/// comment). `capacity` must exceed `staleness`, otherwise consumers could
/// never see an entry old enough to pop.
template <typename T>
class BlockingStalenessQueue {
 public:
  BlockingStalenessQueue(std::int64_t staleness, std::int64_t capacity)
      : sync_(staleness, capacity) {}

  /// Block until the pipeline has room, then enqueue. Returns false (and
  /// drops `value`) when the queue was closed.
  bool push(T value) {
    if (!sync_.begin_push()) return false;
    {
      std::scoped_lock lock(items_mu_);
      items_.push_back(std::move(value));
    }
    sync_.commit_push();
    return true;
  }

  /// Block until an entry `staleness` steps old exists (or the closed
  /// queue drains); nullopt once closed and empty.
  std::optional<T> pop() {
    if (!sync_.begin_pop()) return std::nullopt;
    T out = [&] {
      std::scoped_lock lock(items_mu_);
      T front = std::move(items_.front());
      items_.pop_front();
      return front;
    }();
    sync_.commit_pop();
    return out;
  }

  void close() { sync_.close(); }
  bool closed() const { return sync_.closed(); }
  std::int64_t pending() const { return sync_.size(); }
  std::int64_t staleness() const { return sync_.staleness(); }
  std::int64_t capacity() const { return sync_.capacity(); }

 private:
  detail::ChannelSync sync_;
  std::mutex items_mu_;
  std::deque<T> items_;
};

}  // namespace yf::async
