// FIFO with fixed delay: models round-robin asynchronous workers.
//
// With M workers updating round-robin, the gradient applied at step t was
// computed against the model at step t - tau with tau = M - 1 (Section 5.2
// protocol). Pushing the gradient computed at the current iterate and
// popping once the queue holds tau+1 entries reproduces that exactly.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <utility>

namespace yf::async {

template <typename T>
class StalenessQueue {
 public:
  explicit StalenessQueue(std::int64_t staleness) : staleness_(staleness) {
    if (staleness < 0) throw std::invalid_argument("StalenessQueue: staleness must be >= 0");
  }

  /// Push the value produced at the current step; returns the value that is
  /// now `staleness` steps old, once the pipeline is full.
  std::optional<T> push(T value) {
    queue_.push_back(std::move(value));
    if (static_cast<std::int64_t>(queue_.size()) > staleness_) {
      T out = std::move(queue_.front());
      queue_.pop_front();
      return out;
    }
    return std::nullopt;
  }

  std::int64_t staleness() const { return staleness_; }
  std::size_t pending() const { return queue_.size(); }

 private:
  std::int64_t staleness_;
  std::deque<T> queue_;
};

}  // namespace yf::async
