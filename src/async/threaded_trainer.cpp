#include "async/threaded_trainer.hpp"

#include <chrono>
#include <cmath>
#include <future>
#include <mutex>
#include <thread>

#include "async/total_momentum.hpp"
#include "core/parallel.hpp"

namespace yf::async {

ThreadedTrainerResult run_threaded_training(const tensor::Tensor& x0, const GradOracle& oracle,
                                            const ThreadedTrainerOptions& opts) {
  ThreadedTrainerResult result;
  tensor::Tensor x = x0.clone();
  tensor::Tensor v = tensor::Tensor::zeros(x.shape());
  std::mutex mu;

  // Iterate history: iterates[k] is the model after k updates. Each worker
  // gradient is evaluated at the exact iterate it snapshotted, so gradient
  // records carry that index -- the pairing Eq. 37 needs.
  std::vector<tensor::Tensor> iterates;
  iterates.push_back(x.clone());
  struct GradRecord {
    std::size_t read_index;
    tensor::Tensor g;
    double alpha;
  };
  std::vector<GradRecord> records;

  auto worker_fn = [&](std::uint64_t seed) {
    tensor::Rng rng(seed);
    for (std::int64_t s = 0; s < opts.steps_per_worker; ++s) {
      tensor::Tensor snapshot;
      std::size_t read_index;
      {
        std::scoped_lock lock(mu);
        snapshot = x.clone();
        read_index = iterates.size() - 1;
      }
      tensor::Tensor g = oracle(snapshot, rng);  // slow part: outside the lock
      if (opts.compute_delay_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(opts.compute_delay_us));
      }
      {
        std::scoped_lock lock(mu);
        records.push_back({read_index, g.clone(), opts.lr});
        v.mul_(opts.momentum);
        v.add_(g, -opts.lr);
        x.add_(v);
        iterates.push_back(x.clone());
      }
    }
  };

  // Run the workers on the shared pool instead of spawning threads per
  // call. Hogwild workers rendezvous on `mu`, so every worker needs its
  // own pool thread to make progress concurrently.
  auto& pool = core::ThreadPool::instance();
  pool.ensure_workers(static_cast<std::size_t>(opts.workers));
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(opts.workers));
  for (std::int64_t w = 0; w < opts.workers; ++w) {
    const std::uint64_t seed = opts.seed + static_cast<std::uint64_t>(w) * 7919 + 1;
    futures.push_back(pool.submit([&worker_fn, seed] { worker_fn(seed); }));
  }
  for (auto& f : futures) f.get();

  // Post-hoc Eq. 37 measurement: for each gradient evaluated at iterate j,
  // mu_hat_T = median_k ( (x_{j+1} - x_j + alpha g_j)_k / (x_j - x_{j-1})_k ).
  for (const auto& rec : records) {
    const std::size_t j = rec.read_index;
    if (j == 0 || j + 1 >= iterates.size()) continue;
    std::vector<double> ratios;
    ratios.reserve(static_cast<std::size_t>(rec.g.size()));
    for (std::int64_t k = 0; k < rec.g.size(); ++k) {
      const double den = iterates[j][k] - iterates[j - 1][k];
      if (std::abs(den) < 1e-10) continue;
      const double num = iterates[j + 1][k] - iterates[j][k] + rec.alpha * rec.g[k];
      ratios.push_back(num / den);
    }
    if (!ratios.empty()) result.total_momentum_estimates.push_back(median(std::move(ratios)));
  }

  result.final_x = std::move(x);
  result.total_updates = static_cast<std::int64_t>(iterates.size()) - 1;
  return result;
}

}  // namespace yf::async
