#include "async/threaded_trainer.hpp"

#include <algorithm>
#include <memory>

#include "async/param_server.hpp"
#include "core/kernels.hpp"
#include "optim/momentum_sgd.hpp"

namespace yf::async {

ThreadedTrainerResult run_threaded_training(const tensor::Tensor& x0, const GradOracle& oracle,
                                            const ThreadedTrainerOptions& opts) {
  autograd::Variable master(x0.clone(), /*requires_grad=*/true);
  auto optimizer = std::make_shared<optim::MomentumSGD>(
      std::vector<autograd::Variable>{master}, opts.lr, opts.momentum);

  ParamServerOptions server_opts;
  server_opts.shards = opts.shards;
  server_opts.measure = true;
  // Emergent staleness is bounded by the worker count in practice; keep
  // enough history that even a badly delayed push can still be paired.
  server_opts.history = std::max<std::int64_t>(64, 4 * opts.workers);
  ShardedParamServer server(optimizer, server_opts);

  std::vector<ServerWorker> workers;
  workers.reserve(static_cast<std::size_t>(opts.workers));
  for (std::int64_t w = 0; w < opts.workers; ++w) {
    autograd::Variable replica(x0.clone(), /*requires_grad=*/true);
    auto rng = std::make_shared<tensor::Rng>(opts.seed + static_cast<std::uint64_t>(w) * 7919 + 1);
    ServerWorker worker;
    worker.params = {replica};
    worker.grad_fn = [replica, rng, &oracle] {
      const tensor::Tensor g = oracle(replica.value(), *rng);
      core::copy(replica.node()->ensure_grad().data(), g.data());
      return 0.0;  // the oracle protocol carries no loss
    };
    workers.push_back(std::move(worker));
  }

  ServerRunOptions run_opts;
  run_opts.steps_per_worker = opts.steps_per_worker;
  run_opts.compute_delay_us = opts.compute_delay_us;
  const ServerRunResult run = run_workers(server, workers, run_opts);

  ThreadedTrainerResult result;
  result.final_x = master.value().clone();
  result.total_updates = run.total_updates;
  result.total_momentum_estimates.reserve(run.stats.size());
  for (const auto& stats : run.stats) {
    if (stats.mu_hat_total) result.total_momentum_estimates.push_back(*stats.mu_hat_total);
  }
  return result;
}

}  // namespace yf::async
