// CopyTranslate: synthetic "translation" task for the seq2seq stability
// experiments (Table 1 substitute).
//
// Source: random token sequence. Target: the source reversed and mapped
// through a fixed random permutation of the vocabulary ("word-for-word
// translation with reordering"), wrapped in BOS/EOS. Deterministic given
// the source, so a seq2seq model can drive the loss toward zero -- and the
// optimizer's stability (not the task ceiling) is what differentiates runs.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/random.hpp"

namespace yf::data {

struct CopyTranslateConfig {
  std::int64_t vocab = 14;   ///< content tokens; BOS = vocab, EOS = vocab + 1
  std::int64_t src_len = 8;
  std::uint64_t seed = 0;    ///< fixes the permutation
};

struct TranslationBatch {
  std::vector<std::int64_t> src;  ///< [B, src_len] row-major
  std::vector<std::int64_t> tgt;  ///< [B, src_len + 2] row-major: BOS ... EOS
  std::int64_t batch = 0;
  std::int64_t src_len = 0;
  std::int64_t tgt_len_plus1 = 0;  ///< src_len + 2 (BOS + tokens + EOS)
};

class CopyTranslate {
 public:
  explicit CopyTranslate(const CopyTranslateConfig& cfg);

  TranslationBatch sample(std::int64_t batch, tensor::Rng& rng) const;

  std::int64_t src_vocab() const { return cfg_.vocab; }
  std::int64_t tgt_vocab() const { return cfg_.vocab + 2; }  ///< + BOS, EOS
  std::int64_t bos() const { return cfg_.vocab; }
  std::int64_t eos() const { return cfg_.vocab + 1; }
  const std::vector<std::int64_t>& permutation() const { return perm_; }

 private:
  CopyTranslateConfig cfg_;
  std::vector<std::int64_t> perm_;
};

}  // namespace yf::data
