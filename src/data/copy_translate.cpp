#include "data/copy_translate.hpp"

#include <algorithm>
#include <numeric>

namespace yf::data {

CopyTranslate::CopyTranslate(const CopyTranslateConfig& cfg) : cfg_(cfg) {
  perm_.resize(static_cast<std::size_t>(cfg.vocab));
  std::iota(perm_.begin(), perm_.end(), 0);
  tensor::Rng rng(cfg.seed);
  std::shuffle(perm_.begin(), perm_.end(), rng.engine());
}

TranslationBatch CopyTranslate::sample(std::int64_t batch, tensor::Rng& rng) const {
  TranslationBatch b;
  b.batch = batch;
  b.src_len = cfg_.src_len;
  b.tgt_len_plus1 = cfg_.src_len + 2;
  b.src.resize(static_cast<std::size_t>(batch * b.src_len));
  b.tgt.resize(static_cast<std::size_t>(batch * b.tgt_len_plus1));
  for (std::int64_t i = 0; i < batch; ++i) {
    for (std::int64_t t = 0; t < b.src_len; ++t) {
      b.src[static_cast<std::size_t>(i * b.src_len + t)] = rng.index(cfg_.vocab);
    }
    b.tgt[static_cast<std::size_t>(i * b.tgt_len_plus1)] = bos();
    for (std::int64_t t = 0; t < b.src_len; ++t) {
      const auto src_tok = b.src[static_cast<std::size_t>(i * b.src_len + (b.src_len - 1 - t))];
      b.tgt[static_cast<std::size_t>(i * b.tgt_len_plus1 + 1 + t)] =
          perm_[static_cast<std::size_t>(src_tok)];
    }
    b.tgt[static_cast<std::size_t>(i * b.tgt_len_plus1 + b.src_len + 1)] = eos();
  }
  return b;
}

}  // namespace yf::data
