// SynthCIFAR: Gaussian-mixture image classification (DESIGN.md §2).
//
// Each class k has a fixed smooth prototype image; samples are prototype +
// pixel noise + random global brightness/contrast jitter. This preserves
// what the CIFAR experiments exercise from the optimizer's point of view:
// minibatch gradient noise on a deep conv net with anisotropic curvature
// (classes differ at different spatial frequencies).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace yf::data {

struct SynthCifarConfig {
  std::int64_t classes = 10;
  std::int64_t channels = 3;
  std::int64_t height = 16;
  std::int64_t width = 16;
  double noise = 0.35;     ///< pixel noise stddev
  double jitter = 0.15;    ///< brightness/contrast jitter scale
  std::uint64_t seed = 0;  ///< fixes the class prototypes
};

struct ImageBatch {
  tensor::Tensor images;               ///< [N, C, H, W]
  std::vector<std::int64_t> labels;    ///< size N
};

class SynthCifar {
 public:
  explicit SynthCifar(const SynthCifarConfig& cfg);

  /// Sample a training minibatch (labels uniform over classes).
  ImageBatch sample(std::int64_t batch, tensor::Rng& rng) const;

  /// Deterministic held-out batch for validation (seeded independently).
  ImageBatch validation_batch(std::int64_t batch, std::uint64_t seed = 9999) const;

  const SynthCifarConfig& config() const { return cfg_; }
  const tensor::Tensor& prototype(std::int64_t k) const {
    return prototypes_[static_cast<std::size_t>(k)];
  }

 private:
  SynthCifarConfig cfg_;
  std::vector<tensor::Tensor> prototypes_;  ///< each [C, H, W]
};

}  // namespace yf::data
