#include "data/batching.hpp"

#include <stdexcept>

namespace yf::data {

std::vector<std::int64_t> argmax_rows(const std::vector<double>& scores, std::int64_t rows,
                                      std::int64_t cols) {
  if (static_cast<std::int64_t>(scores.size()) != rows * cols) {
    throw std::invalid_argument("argmax_rows: size mismatch");
  }
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < cols; ++c) {
      if (scores[static_cast<std::size_t>(r * cols + c)] >
          scores[static_cast<std::size_t>(r * cols + best)]) {
        best = c;
      }
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

double token_accuracy(const std::vector<std::int64_t>& predictions,
                      const std::vector<std::int64_t>& targets) {
  if (predictions.size() != targets.size() || targets.empty()) {
    throw std::invalid_argument("token_accuracy: size mismatch or empty");
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (predictions[i] == targets[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(targets.size());
}

}  // namespace yf::data
