// Small helpers shared by the token-stream datasets.
#pragma once

#include <cstdint>
#include <vector>

namespace yf::data {

/// Argmax of each row of a flat [rows, cols] score matrix.
std::vector<std::int64_t> argmax_rows(const std::vector<double>& scores, std::int64_t rows,
                                      std::int64_t cols);

/// Token prediction accuracy between two equally-sized id arrays.
double token_accuracy(const std::vector<std::int64_t>& predictions,
                      const std::vector<std::int64_t>& targets);

}  // namespace yf::data
