// BracketLang: synthetic "parsing as language modeling" corpus (WSJ sub).
//
// Random labelled trees are generated and linearized as token sequences
//   OPEN label ... CLOSE
// following Choe & Charniak's reduction of constituency parsing to
// language modeling. The bracket-F1 substitute metric measures the LM's
// next-token predictions restricted to structural (OPEN/CLOSE) positions.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/random.hpp"

namespace yf::data {

struct BracketLangConfig {
  std::int64_t labels = 8;      ///< nonterminal labels
  std::int64_t terminals = 12;  ///< leaf tokens
  std::int64_t max_depth = 4;
  double branch_prob = 0.6;     ///< probability an expansion keeps branching
  std::uint64_t seed = 0;
};

/// Token ids: 0 = OPEN, 1 = CLOSE, [2, 2+labels) = labels,
/// [2+labels, 2+labels+terminals) = terminals.
class BracketLang {
 public:
  explicit BracketLang(const BracketLangConfig& cfg);

  std::int64_t vocab() const { return 2 + cfg_.labels + cfg_.terminals; }
  static constexpr std::int64_t kOpen = 0;
  static constexpr std::int64_t kClose = 1;

  /// Sample one linearized tree (variable length).
  std::vector<std::int64_t> sample_tree(tensor::Rng& rng) const;

  /// Sample a fixed-size [batch, seq_len+1] block by concatenating trees
  /// and chunking the stream, row-major.
  std::vector<std::int64_t> sample_batch(std::int64_t batch, std::int64_t seq_len_plus1,
                                         tensor::Rng& rng) const;

  /// Bracket F1 substitute: micro-F1 of predicting the structural tokens
  /// (OPEN/CLOSE) given predictions vs. targets over a flat token array.
  static double bracket_f1(const std::vector<std::int64_t>& predictions,
                           const std::vector<std::int64_t>& targets);

  const BracketLangConfig& config() const { return cfg_; }

 private:
  void expand(std::vector<std::int64_t>& out, std::int64_t depth, tensor::Rng& rng) const;

  BracketLangConfig cfg_;
};

}  // namespace yf::data
