#include "data/bracket_lang.hpp"

#include <stdexcept>

namespace yf::data {

BracketLang::BracketLang(const BracketLangConfig& cfg) : cfg_(cfg) {
  if (cfg.labels < 1 || cfg.terminals < 1) {
    throw std::invalid_argument("BracketLang: labels and terminals must be >= 1");
  }
}

void BracketLang::expand(std::vector<std::int64_t>& out, std::int64_t depth,
                         tensor::Rng& rng) const {
  out.push_back(kOpen);
  out.push_back(2 + rng.index(cfg_.labels));  // label
  const std::int64_t children = 1 + rng.index(2);  // 1-2 children
  for (std::int64_t c = 0; c < children; ++c) {
    if (depth < cfg_.max_depth && rng.bernoulli(cfg_.branch_prob)) {
      expand(out, depth + 1, rng);
    } else {
      out.push_back(2 + cfg_.labels + rng.index(cfg_.terminals));  // terminal leaf
    }
  }
  out.push_back(kClose);
}

std::vector<std::int64_t> BracketLang::sample_tree(tensor::Rng& rng) const {
  std::vector<std::int64_t> out;
  expand(out, 0, rng);
  return out;
}

std::vector<std::int64_t> BracketLang::sample_batch(std::int64_t batch,
                                                    std::int64_t seq_len_plus1,
                                                    tensor::Rng& rng) const {
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(batch * seq_len_plus1));
  std::vector<std::int64_t> stream;
  for (std::int64_t b = 0; b < batch; ++b) {
    while (static_cast<std::int64_t>(stream.size()) < seq_len_plus1) {
      const auto tree = sample_tree(rng);
      stream.insert(stream.end(), tree.begin(), tree.end());
    }
    out.insert(out.end(), stream.begin(), stream.begin() + seq_len_plus1);
    stream.erase(stream.begin(), stream.begin() + seq_len_plus1);
  }
  return out;
}

double BracketLang::bracket_f1(const std::vector<std::int64_t>& predictions,
                               const std::vector<std::int64_t>& targets) {
  if (predictions.size() != targets.size() || targets.empty()) {
    throw std::invalid_argument("bracket_f1: size mismatch or empty");
  }
  // Micro-averaged F1 over the structural classes {OPEN, CLOSE}.
  std::int64_t tp = 0, fp = 0, fn = 0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const bool pred_structural = predictions[i] == kOpen || predictions[i] == kClose;
    const bool tgt_structural = targets[i] == kOpen || targets[i] == kClose;
    if (pred_structural && tgt_structural && predictions[i] == targets[i]) {
      ++tp;
    } else if (pred_structural) {
      ++fp;
    } else if (tgt_structural) {
      ++fn;
    }
  }
  const double denom = static_cast<double>(2 * tp + fp + fn);
  return denom > 0.0 ? 2.0 * static_cast<double>(tp) / denom : 0.0;
}

}  // namespace yf::data
