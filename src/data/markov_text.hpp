// MarkovText: char-level corpus substitute for TinyShakespeare.
//
// An order-1 Markov chain over `vocab` symbols with a sparse, temperature-
// controlled random transition matrix. Entropy is tunable and well below
// log(vocab), so an LSTM LM has real structure to learn -- the property the
// TS experiments (char-level LM, 65 symbols) rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/random.hpp"

namespace yf::data {

struct MarkovTextConfig {
  std::int64_t vocab = 65;
  std::int64_t branching = 6;  ///< non-negligible successors per symbol
  double temperature = 1.0;    ///< flatter transitions as temperature grows
  std::uint64_t seed = 0;      ///< fixes the language
};

class MarkovText {
 public:
  explicit MarkovText(const MarkovTextConfig& cfg);

  /// Sample a [batch, seq_len+1] token block, row-major. Each row is an
  /// independent chain started from a random symbol.
  std::vector<std::int64_t> sample_batch(std::int64_t batch, std::int64_t seq_len_plus1,
                                         tensor::Rng& rng) const;

  /// Per-symbol transition distribution (tests).
  const std::vector<double>& transition_row(std::int64_t symbol) const;

  const MarkovTextConfig& config() const { return cfg_; }

 private:
  MarkovTextConfig cfg_;
  std::vector<std::vector<double>> transitions_;  ///< vocab rows, each sums to 1
};

}  // namespace yf::data
