#include "data/markov_text.hpp"

#include <cmath>
#include <stdexcept>

namespace yf::data {

MarkovText::MarkovText(const MarkovTextConfig& cfg) : cfg_(cfg) {
  if (cfg.vocab < 2 || cfg.branching < 1) {
    throw std::invalid_argument("MarkovText: vocab >= 2 and branching >= 1 required");
  }
  tensor::Rng rng(cfg.seed);
  transitions_.assign(static_cast<std::size_t>(cfg.vocab),
                      std::vector<double>(static_cast<std::size_t>(cfg.vocab), 0.0));
  for (auto& row : transitions_) {
    // `branching` heavy successors plus a small uniform floor.
    for (std::int64_t b = 0; b < cfg.branching; ++b) {
      const auto j = rng.index(cfg.vocab);
      row[static_cast<std::size_t>(j)] += std::exp(rng.normal() / cfg.temperature);
    }
    double total = 0.0;
    for (auto& w : row) {
      w += 0.01;
      total += w;
    }
    for (auto& w : row) w /= total;
  }
}

std::vector<std::int64_t> MarkovText::sample_batch(std::int64_t batch,
                                                   std::int64_t seq_len_plus1,
                                                   tensor::Rng& rng) const {
  std::vector<std::int64_t> out(static_cast<std::size_t>(batch * seq_len_plus1));
  for (std::int64_t b = 0; b < batch; ++b) {
    std::int64_t s = rng.index(cfg_.vocab);
    for (std::int64_t t = 0; t < seq_len_plus1; ++t) {
      out[static_cast<std::size_t>(b * seq_len_plus1 + t)] = s;
      const auto& row = transitions_[static_cast<std::size_t>(s)];
      s = rng.categorical({row.data(), row.size()});
    }
  }
  return out;
}

const std::vector<double>& MarkovText::transition_row(std::int64_t symbol) const {
  return transitions_.at(static_cast<std::size_t>(symbol));
}

}  // namespace yf::data
