#include "data/zipf_text.hpp"

#include <cmath>
#include <stdexcept>

namespace yf::data {

ZipfText::ZipfText(const ZipfTextConfig& cfg) : cfg_(cfg) {
  if (cfg.vocab < 2) throw std::invalid_argument("ZipfText: vocab >= 2 required");
  unigram_.resize(static_cast<std::size_t>(cfg.vocab));
  double total = 0.0;
  for (std::int64_t i = 0; i < cfg.vocab; ++i) {
    unigram_[static_cast<std::size_t>(i)] =
        1.0 / std::pow(static_cast<double>(i + 1), cfg.zipf_exponent);
    total += unigram_[static_cast<std::size_t>(i)];
  }
  for (auto& p : unigram_) p /= total;

  tensor::Rng rng(cfg.seed);
  successors_.resize(static_cast<std::size_t>(cfg.vocab));
  for (auto& list : successors_) {
    list.resize(static_cast<std::size_t>(cfg.successors));
    for (auto& s : list) s = rng.categorical({unigram_.data(), unigram_.size()});
  }
}

std::int64_t ZipfText::next_token(std::int64_t prev, tensor::Rng& rng) const {
  if (rng.bernoulli(cfg_.bigram_weight)) {
    const auto& list = successors_[static_cast<std::size_t>(prev)];
    return list[static_cast<std::size_t>(rng.index(static_cast<std::int64_t>(list.size())))];
  }
  return rng.categorical({unigram_.data(), unigram_.size()});
}

std::vector<std::int64_t> ZipfText::sample_batch(std::int64_t batch, std::int64_t seq_len_plus1,
                                                 tensor::Rng& rng) const {
  std::vector<std::int64_t> out(static_cast<std::size_t>(batch * seq_len_plus1));
  for (std::int64_t b = 0; b < batch; ++b) {
    std::int64_t s = rng.categorical({unigram_.data(), unigram_.size()});
    for (std::int64_t t = 0; t < seq_len_plus1; ++t) {
      out[static_cast<std::size_t>(b * seq_len_plus1 + t)] = s;
      s = next_token(s, rng);
    }
  }
  return out;
}

}  // namespace yf::data
