// ZipfText: word-level corpus substitute for Penn TreeBank.
//
// Mixture of a Zipfian unigram distribution and a deterministic-ish bigram
// table: with probability `bigram_weight` the next word comes from the
// previous word's (Zipf-weighted) successor list, otherwise from the global
// Zipf marginal. Gives the heavy-tailed vocabulary statistics that make
// word-level LM gradients bursty -- the optimizer-facing property of PTB.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/random.hpp"

namespace yf::data {

struct ZipfTextConfig {
  std::int64_t vocab = 200;
  double zipf_exponent = 1.1;
  double bigram_weight = 0.7;
  std::int64_t successors = 4;  ///< successor list length per word
  std::uint64_t seed = 0;
};

class ZipfText {
 public:
  explicit ZipfText(const ZipfTextConfig& cfg);

  /// Sample a [batch, seq_len+1] token block, row-major.
  std::vector<std::int64_t> sample_batch(std::int64_t batch, std::int64_t seq_len_plus1,
                                         tensor::Rng& rng) const;

  const std::vector<double>& unigram() const { return unigram_; }
  const ZipfTextConfig& config() const { return cfg_; }

 private:
  std::int64_t next_token(std::int64_t prev, tensor::Rng& rng) const;

  ZipfTextConfig cfg_;
  std::vector<double> unigram_;                        ///< Zipf marginal
  std::vector<std::vector<std::int64_t>> successors_;  ///< per-word successor list
};

}  // namespace yf::data
