#include "data/synth_cifar.hpp"

#include <cmath>

namespace yf::data {

SynthCifar::SynthCifar(const SynthCifarConfig& cfg) : cfg_(cfg) {
  tensor::Rng rng(cfg.seed);
  prototypes_.reserve(static_cast<std::size_t>(cfg.classes));
  for (std::int64_t k = 0; k < cfg.classes; ++k) {
    tensor::Tensor proto(tensor::Shape{cfg.channels, cfg.height, cfg.width});
    // Smooth prototypes: sum of a few random low-frequency sinusoids per
    // channel, so classes differ across spatial frequencies.
    for (std::int64_t c = 0; c < cfg.channels; ++c) {
      const double fx = rng.uniform(0.5, 3.0), fy = rng.uniform(0.5, 3.0);
      const double px = rng.uniform(0.0, 6.28), py = rng.uniform(0.0, 6.28);
      const double amp = rng.uniform(0.5, 1.0);
      for (std::int64_t y = 0; y < cfg.height; ++y) {
        for (std::int64_t x = 0; x < cfg.width; ++x) {
          const double u = static_cast<double>(x) / static_cast<double>(cfg.width);
          const double v = static_cast<double>(y) / static_cast<double>(cfg.height);
          proto.at({c, y, x}) =
              amp * std::sin(2.0 * 3.14159265 * (fx * u) + px) *
              std::cos(2.0 * 3.14159265 * (fy * v) + py);
        }
      }
    }
    prototypes_.push_back(std::move(proto));
  }
}

ImageBatch SynthCifar::sample(std::int64_t batch, tensor::Rng& rng) const {
  ImageBatch b;
  b.images = tensor::Tensor(tensor::Shape{batch, cfg_.channels, cfg_.height, cfg_.width});
  b.labels.resize(static_cast<std::size_t>(batch));
  const auto pix = cfg_.channels * cfg_.height * cfg_.width;
  for (std::int64_t i = 0; i < batch; ++i) {
    const auto k = rng.index(cfg_.classes);
    b.labels[static_cast<std::size_t>(i)] = k;
    const auto& proto = prototypes_[static_cast<std::size_t>(k)];
    const double gain = 1.0 + cfg_.jitter * rng.normal();
    const double offset = cfg_.jitter * rng.normal();
    for (std::int64_t j = 0; j < pix; ++j) {
      b.images[i * pix + j] = gain * proto[j] + offset + cfg_.noise * rng.normal();
    }
  }
  return b;
}

ImageBatch SynthCifar::validation_batch(std::int64_t batch, std::uint64_t seed) const {
  tensor::Rng rng(seed);
  return sample(batch, rng);
}

}  // namespace yf::data
