// Fully-connected layer: y = x @ W + b, x: [B, in], W: [in, out], b: [out].
#pragma once

#include "nn/module.hpp"
#include "tensor/random.hpp"

namespace yf::nn {

class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, tensor::Rng& rng,
         bool with_bias = true);

  autograd::Variable forward(const autograd::Variable& x) const;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

  autograd::Variable weight;  ///< [in, out]
  autograd::Variable bias;    ///< [out]; undefined when constructed without bias

 private:
  std::int64_t in_, out_;
  bool with_bias_;
};

}  // namespace yf::nn
