// 2-D convolution layer (NCHW), backed by autograd::conv2d (im2col).
#pragma once

#include "nn/module.hpp"
#include "tensor/random.hpp"

namespace yf::nn {

class Conv2d : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
         std::int64_t stride, std::int64_t pad, tensor::Rng& rng);

  autograd::Variable forward(const autograd::Variable& x) const;

  autograd::Variable weight;  ///< [out, in, k, k]
  autograd::Variable bias;    ///< [out]

  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }

 private:
  std::int64_t stride_, pad_;
};

}  // namespace yf::nn
