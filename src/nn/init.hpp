// Weight initialization schemes (Glorot/Xavier, He) used by all layers.
#pragma once

#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace yf::nn::init {

/// Xavier/Glorot uniform: U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
tensor::Tensor xavier_uniform(tensor::Shape shape, std::int64_t fan_in, std::int64_t fan_out,
                              tensor::Rng& rng, double gain = 1.0);

/// He normal: N(0, sqrt(2 / fan_in)); standard for ReLU networks.
tensor::Tensor he_normal(tensor::Shape shape, std::int64_t fan_in, tensor::Rng& rng,
                         double gain = 1.0);

/// Plain scaled normal N(0, stddev).
tensor::Tensor normal(tensor::Shape shape, double stddev, tensor::Rng& rng);

}  // namespace yf::nn::init
