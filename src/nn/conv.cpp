#include "nn/conv.hpp"

#include "autograd/ops.hpp"
#include "nn/init.hpp"

namespace yf::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
               std::int64_t stride, std::int64_t pad, tensor::Rng& rng)
    : stride_(stride), pad_(pad) {
  const auto fan_in = in_channels * kernel * kernel;
  weight = register_parameter(
      "weight", init::he_normal({out_channels, in_channels, kernel, kernel}, fan_in, rng));
  bias = register_parameter("bias", tensor::Tensor::zeros({out_channels}));
}

autograd::Variable Conv2d::forward(const autograd::Variable& x) const {
  return autograd::conv2d(x, weight, bias, stride_, pad_);
}

}  // namespace yf::nn
