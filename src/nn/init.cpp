#include "nn/init.hpp"

#include <cmath>

namespace yf::nn::init {

tensor::Tensor xavier_uniform(tensor::Shape shape, std::int64_t fan_in, std::int64_t fan_out,
                              tensor::Rng& rng, double gain) {
  const double a = gain * std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  return rng.uniform_tensor(std::move(shape), -a, a);
}

tensor::Tensor he_normal(tensor::Shape shape, std::int64_t fan_in, tensor::Rng& rng, double gain) {
  const double stddev = gain * std::sqrt(2.0 / static_cast<double>(fan_in));
  return rng.normal_tensor(std::move(shape), 0.0, stddev);
}

tensor::Tensor normal(tensor::Shape shape, double stddev, tensor::Rng& rng) {
  return rng.normal_tensor(std::move(shape), 0.0, stddev);
}

}  // namespace yf::nn::init
