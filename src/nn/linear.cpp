#include "nn/linear.hpp"

#include "autograd/ops.hpp"
#include "nn/init.hpp"

namespace yf::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, tensor::Rng& rng,
               bool with_bias)
    : in_(in_features), out_(out_features), with_bias_(with_bias) {
  weight = register_parameter(
      "weight", init::xavier_uniform({in_, out_}, in_, out_, rng));
  if (with_bias_) {
    bias = register_parameter("bias", tensor::Tensor::zeros({out_}));
  }
}

autograd::Variable Linear::forward(const autograd::Variable& x) const {
  auto y = autograd::matmul(x, weight);
  if (with_bias_) y = autograd::add_row_broadcast(y, bias);
  return y;
}

}  // namespace yf::nn
