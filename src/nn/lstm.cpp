#include "nn/lstm.hpp"

#include "autograd/ops.hpp"
#include "nn/init.hpp"

namespace yf::nn {

namespace ag = yf::autograd;

LSTMCell::LSTMCell(std::int64_t input_size, std::int64_t hidden_size, tensor::Rng& rng,
                   double init_scale)
    : input_(input_size), hidden_(hidden_size) {
  w_x = register_parameter(
      "w_x", init::xavier_uniform({input_, 4 * hidden_}, input_, hidden_, rng, init_scale));
  w_h = register_parameter(
      "w_h", init::xavier_uniform({hidden_, 4 * hidden_}, hidden_, hidden_, rng, init_scale));
  tensor::Tensor bias = tensor::Tensor::zeros({4 * hidden_});
  for (std::int64_t j = hidden_; j < 2 * hidden_; ++j) bias[j] = 1.0;  // forget gate
  b = register_parameter("b", std::move(bias));
}

LSTMState LSTMCell::forward(const autograd::Variable& x, const LSTMState& prev) const {
  // Fused pre-activation: z = x @ Wx + h @ Wh + b, split into 4 gates.
  auto z = ag::add(ag::matmul(x, w_x), ag::matmul(prev.h, w_h));
  z = ag::add_row_broadcast(z, b);
  auto i = ag::sigmoid(ag::slice_cols(z, 0, hidden_));
  auto f = ag::sigmoid(ag::slice_cols(z, hidden_, 2 * hidden_));
  auto g = ag::tanh(ag::slice_cols(z, 2 * hidden_, 3 * hidden_));
  auto o = ag::sigmoid(ag::slice_cols(z, 3 * hidden_, 4 * hidden_));
  LSTMState next;
  next.c = ag::add(ag::mul(f, prev.c), ag::mul(i, g));
  next.h = ag::mul(o, ag::tanh(next.c));
  return next;
}

LSTMState LSTMCell::zero_state(std::int64_t batch) const {
  LSTMState s;
  s.h = ag::zeros({batch, hidden_});
  s.c = ag::zeros({batch, hidden_});
  return s;
}

LSTM::LSTM(std::int64_t input_size, std::int64_t hidden_size, std::int64_t num_layers,
           tensor::Rng& rng, double init_scale) {
  for (std::int64_t l = 0; l < num_layers; ++l) {
    auto cell = std::make_shared<LSTMCell>(l == 0 ? input_size : hidden_size, hidden_size, rng,
                                           init_scale);
    register_module("cell" + std::to_string(l), cell);
    cells_.push_back(std::move(cell));
  }
}

const std::vector<autograd::Variable>& LSTM::forward(
    const std::vector<autograd::Variable>& inputs, std::vector<LSTMState>* states) const {
  std::vector<LSTMState>& st = states ? *states : states_scratch_;
  if (!states) st.clear();
  if (st.empty()) {
    const auto batch = inputs.empty() ? 1 : inputs.front().value().dim(0);
    st.resize(cells_.size());
    for (std::size_t l = 0; l < cells_.size(); ++l) st[l] = cells_[l]->zero_state(batch);
  }
  outputs_.clear();
  outputs_.reserve(inputs.size());
  for (const auto& x : inputs) {
    autograd::Variable layer_in = x;
    for (std::size_t l = 0; l < cells_.size(); ++l) {
      st[l] = cells_[l]->forward(layer_in, st[l]);
      layer_in = st[l].h;
    }
    outputs_.push_back(layer_in);
  }
  return outputs_;
}

std::vector<LSTMState> LSTM::zero_states(std::int64_t batch) const {
  std::vector<LSTMState> st;
  st.reserve(cells_.size());
  for (const auto& cell : cells_) st.push_back(cell->zero_state(batch));
  return st;
}

}  // namespace yf::nn
