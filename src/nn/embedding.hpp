// Token embedding table: weight [V, E]; lookup of a batch of indices.
#pragma once

#include "nn/module.hpp"
#include "tensor/random.hpp"

namespace yf::nn {

class Embedding : public Module {
 public:
  Embedding(std::int64_t vocab, std::int64_t dim, tensor::Rng& rng);

  /// indices (size B) -> [B, E].
  autograd::Variable forward(const std::vector<std::int64_t>& indices) const;

  autograd::Variable weight;  ///< [V, E]

  std::int64_t vocab() const { return vocab_; }
  std::int64_t dim() const { return dim_; }

 private:
  std::int64_t vocab_, dim_;
};

}  // namespace yf::nn
