#include "nn/embedding.hpp"

#include "autograd/ops.hpp"
#include "nn/init.hpp"

namespace yf::nn {

Embedding::Embedding(std::int64_t vocab, std::int64_t dim, tensor::Rng& rng)
    : vocab_(vocab), dim_(dim) {
  // 0.1 stddev keeps initial logits small, as is conventional for LM tables.
  weight = register_parameter("weight", init::normal({vocab_, dim_}, 0.1, rng));
}

autograd::Variable Embedding::forward(const std::vector<std::int64_t>& indices) const {
  return autograd::embedding(weight, indices);
}

}  // namespace yf::nn
