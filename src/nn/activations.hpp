// Stateless activation helpers re-exported at the nn level, so model code
// reads uniformly (nn::relu(x), nn::tanh(x), ...).
#pragma once

#include "autograd/ops.hpp"

namespace yf::nn {

using autograd::relu;
using autograd::sigmoid;
using autograd::softmax;
using autograd::tanh;

}  // namespace yf::nn
