// Module tree with a parameter registry, in the style of torch::nn.
//
// A Module owns named parameters (leaf autograd Variables) and named child
// modules; `parameters()` flattens the subtree in registration order, which
// gives optimizers and the YellowFin tuner a stable parameter ordering.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.hpp"

namespace yf::nn {

class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;  // modules own parameters; no implicit copies
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its children, depth-first, in
  /// registration order. Variable handles share storage with the module.
  std::vector<autograd::Variable> parameters() const;

  /// Same as parameters(), with dotted path names ("encoder.cell0.w_x").
  std::vector<std::pair<std::string, autograd::Variable>> named_parameters() const;

  /// Total scalar parameter count.
  std::int64_t parameter_count() const;

  /// Zero every parameter gradient (call between optimizer steps).
  void zero_grad();

 protected:
  /// Register a leaf parameter; returns the Variable handle to keep.
  autograd::Variable register_parameter(std::string name, tensor::Tensor value);

  /// Register a child module (shared ownership).
  void register_module(std::string name, std::shared_ptr<Module> child);

 private:
  void collect(const std::string& prefix,
               std::vector<std::pair<std::string, autograd::Variable>>& out) const;

  std::vector<std::pair<std::string, autograd::Variable>> params_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
};

/// Flatten all parameter gradients into one rank-1 tensor (tuner input).
tensor::Tensor flatten_grads(const std::vector<autograd::Variable>& params);

/// Flatten all parameter values into one rank-1 tensor.
tensor::Tensor flatten_values(const std::vector<autograd::Variable>& params);

/// Squared L2 norm over all parameter gradients.
double grad_sq_norm(const std::vector<autograd::Variable>& params);

}  // namespace yf::nn
