// Mini ResNet for SynthCIFAR (DESIGN.md §2 substitution for ResNet-110/164).
//
// BN residual CNN, matching the paper's architecture family: stem conv+BN,
// `blocks_per_stage` residual blocks per stage (3 stages, channel doubling
// + stride-2 downsample between stages), global average pooling, linear
// classifier. `with_batchnorm = false` gives the BN-free ablation variant
// (residual branches then scaled by `residual_scale` to stay bounded).
#pragma once

#include <memory>
#include <vector>

#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace yf::nn {

/// conv3x3 -> BN -> relu -> conv3x3 -> BN, added to a (possibly
/// downsampled) skip path, then relu.
class ResidualBlock : public Module {
 public:
  /// If `downsample` is true the block halves H,W (stride 2) and the skip
  /// path uses a 1x1 stride-2 projection from in_ch to out_ch.
  ResidualBlock(std::int64_t in_ch, std::int64_t out_ch, bool downsample, tensor::Rng& rng,
                double residual_scale = 0.5, bool with_batchnorm = true);

  autograd::Variable forward(const autograd::Variable& x) const;

  // Structural accessors for the tape-free serving engine (src/serve/),
  // which mirrors forward() over snapshot-backed weights. BN handles and
  // the projection are null when absent.
  const Conv2d& conv1() const { return *conv1_; }
  const Conv2d& conv2() const { return *conv2_; }
  const Conv2d* proj() const { return proj_.get(); }
  const BatchNorm2d* bn1() const { return bn1_.get(); }
  const BatchNorm2d* bn2() const { return bn2_.get(); }
  double residual_scale() const { return residual_scale_; }

 private:
  std::shared_ptr<Conv2d> conv1_, conv2_, proj_;
  std::shared_ptr<BatchNorm2d> bn1_, bn2_;
  bool downsample_;
  double residual_scale_;
};

struct MiniResNetConfig {
  std::int64_t in_channels = 3;
  std::int64_t base_channels = 8;     ///< channels in the first stage
  std::int64_t blocks_per_stage = 2;  ///< 3 stages total
  std::int64_t num_classes = 10;
  double residual_scale = 0.5;        ///< used only when BN is off
  bool with_batchnorm = true;
};

class MiniResNet : public Module {
 public:
  MiniResNet(const MiniResNetConfig& cfg, tensor::Rng& rng);

  /// images [N, C, H, W] -> logits [N, num_classes].
  autograd::Variable forward(const autograd::Variable& images) const;

  // Structural accessors for the tape-free serving engine (src/serve/).
  const Conv2d& stem() const { return *stem_; }
  const BatchNorm2d* stem_bn() const { return stem_bn_.get(); }
  const std::vector<std::shared_ptr<ResidualBlock>>& blocks() const { return blocks_; }
  const Linear& head() const { return *head_; }

 private:
  std::shared_ptr<Conv2d> stem_;
  std::shared_ptr<BatchNorm2d> stem_bn_;
  std::vector<std::shared_ptr<ResidualBlock>> blocks_;
  std::shared_ptr<Linear> head_;
};

}  // namespace yf::nn
