// LSTM cell and multi-layer unrolled LSTM (BPTT through autograd).
//
// Gate layout in the fused projection [B, 4H]: input | forget | cell | output
// (i, f, g, o). Forget-gate bias is initialized to 1 per standard practice,
// which the paper's LSTM experiments rely on for stable early training.
#pragma once

#include <vector>

#include "nn/module.hpp"
#include "tensor/random.hpp"

namespace yf::nn {

struct LSTMState {
  autograd::Variable h;  ///< [B, H]
  autograd::Variable c;  ///< [B, H]
};

class LSTMCell : public Module {
 public:
  LSTMCell(std::int64_t input_size, std::int64_t hidden_size, tensor::Rng& rng,
           double init_scale = 1.0);

  /// One step: x [B, input] with previous state -> next state.
  LSTMState forward(const autograd::Variable& x, const LSTMState& prev) const;

  /// Zero state for batch size B (constant, non-differentiable). Under an
  /// active GraphTape the zero tensors are tape-cached across steps.
  LSTMState zero_state(std::int64_t batch) const;

  std::int64_t hidden_size() const { return hidden_; }
  std::int64_t input_size() const { return input_; }

  autograd::Variable w_x;  ///< [input, 4H]
  autograd::Variable w_h;  ///< [H, 4H]
  autograd::Variable b;    ///< [4H]

 private:
  std::int64_t input_, hidden_;
};

/// Stack of LSTMCells applied over a token sequence.
class LSTM : public Module {
 public:
  LSTM(std::int64_t input_size, std::int64_t hidden_size, std::int64_t num_layers,
       tensor::Rng& rng, double init_scale = 1.0);

  /// Run over a sequence of per-step inputs (each [B, input]); returns the
  /// top-layer output at every step (each [B, H]) and the final states.
  /// The returned vector is an internal buffer reused across calls (so
  /// steady-state steps do not allocate) -- copy it if it must survive
  /// the next forward() on this module.
  const std::vector<autograd::Variable>& forward(const std::vector<autograd::Variable>& inputs,
                                                 std::vector<LSTMState>* states) const;

  std::vector<LSTMState> zero_states(std::int64_t batch) const;

  /// Drop the Variable handles held in the reuse buffers. On the heap
  /// graph path those handles pin the previous step's whole graph until
  /// the next forward(); callers that are done consuming forward()'s
  /// result (language_model, seq2seq) clear so steady-state memory stays
  /// bounded by one step. Capacity is retained, so the tape path's
  /// zero-allocation property is unaffected.
  void clear_scratch() const {
    outputs_.clear();
    states_scratch_.clear();
  }

  std::int64_t num_layers() const { return static_cast<std::int64_t>(cells_.size()); }
  const LSTMCell& cell(std::int64_t i) const { return *cells_[static_cast<std::size_t>(i)]; }

 private:
  std::vector<std::shared_ptr<LSTMCell>> cells_;
  // Per-call scratch reused across steps (modules are driven by one
  // thread; worker replicas each own their module).
  mutable std::vector<autograd::Variable> outputs_;
  mutable std::vector<LSTMState> states_scratch_;
};

}  // namespace yf::nn
