#include "nn/language_model.hpp"

#include <stdexcept>

#include "autograd/ops.hpp"

namespace yf::nn {

namespace ag = yf::autograd;

LSTMLanguageModel::LSTMLanguageModel(const LanguageModelConfig& cfg, tensor::Rng& rng)
    : cfg_(cfg) {
  if (cfg.tie_weights && cfg.embed_dim != cfg.hidden) {
    throw std::invalid_argument("LSTMLanguageModel: weight tying requires embed_dim == hidden");
  }
  embed_ = std::make_shared<Embedding>(cfg.vocab, cfg.embed_dim, rng);
  lstm_ = std::make_shared<LSTM>(cfg.embed_dim, cfg.hidden, cfg.layers, rng, cfg.init_scale);
  register_module("embed", embed_);
  register_module("lstm", lstm_);
  if (!cfg.tie_weights) {
    out_ = std::make_shared<Linear>(cfg.hidden, cfg.vocab, rng);
    register_module("out", out_);
  }
}

autograd::Variable LSTMLanguageModel::logits(const std::vector<std::int64_t>& inputs,
                                             std::int64_t batch, std::int64_t seq_len) const {
  if (static_cast<std::int64_t>(inputs.size()) != batch * seq_len) {
    throw std::invalid_argument("LSTMLanguageModel::logits: token count mismatch");
  }
  // Per-step embeddings: column t of the [B, T] token matrix.
  steps_.clear();
  steps_.reserve(static_cast<std::size_t>(seq_len));
  col_.resize(static_cast<std::size_t>(batch));
  for (std::int64_t t = 0; t < seq_len; ++t) {
    for (std::int64_t b = 0; b < batch; ++b)
      col_[static_cast<std::size_t>(b)] = inputs[static_cast<std::size_t>(b * seq_len + t)];
    steps_.push_back(embed_->forward(col_));
  }
  const auto& outputs = lstm_->forward(steps_, nullptr);
  // Concatenate step outputs along rows: [B*T, H] with row = b*T + t.
  // concat via rows: build one [B*T, H] by stacking; use per-step projection
  // then concat of logits keeps memory the same, so project per step.
  step_logits_.clear();
  step_logits_.reserve(outputs.size());
  for (const auto& h : outputs) {
    if (out_) {
      step_logits_.push_back(out_->forward(h));
    } else {
      // Tied weights (Press & Wolf): logits = h @ Eᵀ. The NT matmul
      // absorbs the transpose in the GEMM packing, so no [E, V] copy of
      // the embedding is materialized per step.
      step_logits_.push_back(ag::matmul_nt(h, embed_->weight));
    }
  }
  // Interleave rows so that row = b*T + t: concat columns of [B, V] steps
  // then reshape [B, T*V] -> [B*T, V].
  auto wide = ag::concat_cols(step_logits_);  // [B, T*V]
  auto out = ag::reshape(wide, {batch * seq_len, cfg_.vocab});
  // Release the scratch handles: the graph now lives (only) through
  // `out`'s parent chain, so dropping `out` frees the whole step on the
  // heap path instead of pinning it until the next forward.
  steps_.clear();
  step_logits_.clear();
  lstm_->clear_scratch();
  return out;
}

autograd::Variable LSTMLanguageModel::loss(const std::vector<std::int64_t>& tokens,
                                           std::int64_t batch,
                                           std::int64_t seq_len_plus1) const {
  const auto seq_len = seq_len_plus1 - 1;
  if (seq_len < 1) throw std::invalid_argument("LSTMLanguageModel::loss: sequence too short");
  if (static_cast<std::int64_t>(tokens.size()) != batch * seq_len_plus1) {
    throw std::invalid_argument("LSTMLanguageModel::loss: token count mismatch");
  }
  inputs_.resize(static_cast<std::size_t>(batch * seq_len));
  targets_.resize(static_cast<std::size_t>(batch * seq_len));
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t t = 0; t < seq_len; ++t) {
      inputs_[static_cast<std::size_t>(b * seq_len + t)] =
          tokens[static_cast<std::size_t>(b * seq_len_plus1 + t)];
      targets_[static_cast<std::size_t>(b * seq_len + t)] =
          tokens[static_cast<std::size_t>(b * seq_len_plus1 + t + 1)];
    }
  }
  auto lg = logits(inputs_, batch, seq_len);
  return ag::softmax_cross_entropy(lg, targets_);
}

}  // namespace yf::nn
