#include "nn/activations.hpp"

// Intentionally empty: activations are inline re-exports of autograd ops.
// This TU exists so the build graph has a stable object for the header.
