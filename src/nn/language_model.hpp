// LSTM language model: Embedding -> LSTM stack -> Linear to vocab.
//
// Substitutes for the paper's PTB/TinyShakespeare/WSJ LSTMs (Table 3).
// Supports weight tying (Press & Wolf 2016) for the Fig. 11 "Tied LSTM".
#pragma once

#include <memory>

#include "nn/embedding.hpp"
#include "nn/linear.hpp"
#include "nn/lstm.hpp"
#include "nn/module.hpp"

namespace yf::nn {

struct LanguageModelConfig {
  std::int64_t vocab = 64;
  std::int64_t embed_dim = 32;
  std::int64_t hidden = 32;
  std::int64_t layers = 2;
  double init_scale = 1.0;   ///< scales LSTM weight init (exploding-grad variant uses > 1)
  bool tie_weights = false;  ///< reuse the embedding table as output projection
};

class LSTMLanguageModel : public Module {
 public:
  LSTMLanguageModel(const LanguageModelConfig& cfg, tensor::Rng& rng);

  /// Teacher-forced next-token loss over a [B, T+1] token batch flattened
  /// row-major into `tokens` (inputs = tokens[:, :T], targets = tokens[:, 1:]).
  /// Returns mean cross-entropy over B*T predictions.
  autograd::Variable loss(const std::vector<std::int64_t>& tokens, std::int64_t batch,
                          std::int64_t seq_len_plus1) const;

  /// Logits at every step: tokens [B, T] -> [B*T, V] (row = b*T + t).
  autograd::Variable logits(const std::vector<std::int64_t>& inputs, std::int64_t batch,
                            std::int64_t seq_len) const;

  const LanguageModelConfig& config() const { return cfg_; }

  // Structural accessors for the tape-free serving engine (src/serve/),
  // which mirrors this model's forward over snapshot-backed weights.
  const Embedding& embed() const { return *embed_; }
  const LSTM& lstm() const { return *lstm_; }
  /// Output projection; null when `tie_weights` (logits = h @ Eᵀ).
  const Linear* out_layer() const { return out_.get(); }

 private:
  LanguageModelConfig cfg_;
  std::shared_ptr<Embedding> embed_;
  std::shared_ptr<LSTM> lstm_;
  std::shared_ptr<Linear> out_;  ///< null when tied

  // Per-call scratch reused across steps so a steady-state training step
  // performs no heap allocation (DESIGN.md §8). One thread drives a
  // model instance at a time (worker replicas own their models).
  mutable std::vector<autograd::Variable> steps_;
  mutable std::vector<autograd::Variable> step_logits_;
  mutable std::vector<std::int64_t> col_;
  mutable std::vector<std::int64_t> inputs_;
  mutable std::vector<std::int64_t> targets_;
};

}  // namespace yf::nn
