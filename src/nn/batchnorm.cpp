#include "nn/batchnorm.hpp"

#include "autograd/ops.hpp"

namespace yf::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, double eps) : eps_(eps) {
  gamma = register_parameter("gamma", tensor::Tensor::ones({channels}));
  beta = register_parameter("beta", tensor::Tensor::zeros({channels}));
}

autograd::Variable BatchNorm2d::forward(const autograd::Variable& x) const {
  return autograd::batch_norm2d(x, gamma, beta, eps_);
}

}  // namespace yf::nn
