#include "nn/seq2seq.hpp"

#include <stdexcept>

#include "autograd/ops.hpp"

namespace yf::nn {

namespace ag = yf::autograd;

Seq2Seq::Seq2Seq(const Seq2SeqConfig& cfg, tensor::Rng& rng) : cfg_(cfg) {
  src_embed_ = std::make_shared<Embedding>(cfg.src_vocab, cfg.embed_dim, rng);
  tgt_embed_ = std::make_shared<Embedding>(cfg.tgt_vocab, cfg.embed_dim, rng);
  encoder_ = std::make_shared<LSTM>(cfg.embed_dim, cfg.hidden, cfg.layers, rng, cfg.init_scale);
  decoder_ = std::make_shared<LSTM>(cfg.embed_dim, cfg.hidden, cfg.layers, rng, cfg.init_scale);
  out_ = std::make_shared<Linear>(cfg.hidden, cfg.tgt_vocab, rng);
  register_module("src_embed", src_embed_);
  register_module("tgt_embed", tgt_embed_);
  register_module("encoder", encoder_);
  register_module("decoder", decoder_);
  register_module("out", out_);
}

autograd::Variable Seq2Seq::decode_logits(const std::vector<std::int64_t>& src,
                                          std::int64_t src_len,
                                          const std::vector<std::int64_t>& tgt,
                                          std::int64_t tgt_len_plus1,
                                          std::int64_t batch) const {
  if (static_cast<std::int64_t>(src.size()) != batch * src_len ||
      static_cast<std::int64_t>(tgt.size()) != batch * tgt_len_plus1) {
    throw std::invalid_argument("Seq2Seq: token buffer size mismatch");
  }
  const auto tgt_len = tgt_len_plus1 - 1;
  // Encode source; decoder starts from the encoder's final states.
  enc_steps_.clear();
  enc_steps_.reserve(static_cast<std::size_t>(src_len));
  col_.resize(static_cast<std::size_t>(batch));
  for (std::int64_t t = 0; t < src_len; ++t) {
    for (std::int64_t b = 0; b < batch; ++b)
      col_[static_cast<std::size_t>(b)] = src[static_cast<std::size_t>(b * src_len + t)];
    enc_steps_.push_back(src_embed_->forward(col_));
  }
  states_.clear();
  encoder_->forward(enc_steps_, &states_);

  dec_steps_.clear();
  dec_steps_.reserve(static_cast<std::size_t>(tgt_len));
  for (std::int64_t t = 0; t < tgt_len; ++t) {
    for (std::int64_t b = 0; b < batch; ++b)
      col_[static_cast<std::size_t>(b)] = tgt[static_cast<std::size_t>(b * tgt_len_plus1 + t)];
    dec_steps_.push_back(tgt_embed_->forward(col_));
  }
  const auto& dec_out = decoder_->forward(dec_steps_, &states_);
  step_logits_.clear();
  step_logits_.reserve(dec_out.size());
  for (const auto& h : dec_out) step_logits_.push_back(out_->forward(h));
  auto wide = ag::concat_cols(step_logits_);  // [B, T*V]
  auto out = ag::reshape(wide, {batch * tgt_len, cfg_.tgt_vocab});
  // Release the scratch handles so the returned logits are the only
  // thing keeping this step's graph alive (see language_model.cpp).
  enc_steps_.clear();
  dec_steps_.clear();
  step_logits_.clear();
  states_.clear();
  encoder_->clear_scratch();
  decoder_->clear_scratch();
  return out;
}

autograd::Variable Seq2Seq::loss(const std::vector<std::int64_t>& src, std::int64_t src_len,
                                 const std::vector<std::int64_t>& tgt,
                                 std::int64_t tgt_len_plus1, std::int64_t batch) const {
  const auto tgt_len = tgt_len_plus1 - 1;
  auto lg = decode_logits(src, src_len, tgt, tgt_len_plus1, batch);
  std::vector<std::int64_t> targets(static_cast<std::size_t>(batch * tgt_len));
  for (std::int64_t b = 0; b < batch; ++b)
    for (std::int64_t t = 0; t < tgt_len; ++t)
      targets[static_cast<std::size_t>(b * tgt_len + t)] =
          tgt[static_cast<std::size_t>(b * tgt_len_plus1 + t + 1)];
  return ag::softmax_cross_entropy(lg, targets);
}

double Seq2Seq::token_accuracy(const std::vector<std::int64_t>& src, std::int64_t src_len,
                               const std::vector<std::int64_t>& tgt,
                               std::int64_t tgt_len_plus1, std::int64_t batch) const {
  const auto tgt_len = tgt_len_plus1 - 1;
  auto lg = decode_logits(src, src_len, tgt, tgt_len_plus1, batch);
  const auto& v = lg.value();
  std::int64_t correct = 0;
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t t = 0; t < tgt_len; ++t) {
      const auto row = b * tgt_len + t;
      std::int64_t best = 0;
      for (std::int64_t j = 1; j < cfg_.tgt_vocab; ++j)
        if (v[row * cfg_.tgt_vocab + j] > v[row * cfg_.tgt_vocab + best]) best = j;
      if (best == tgt[static_cast<std::size_t>(b * tgt_len_plus1 + t + 1)]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(batch * tgt_len);
}

}  // namespace yf::nn
