// Batch normalization layer (Ioffe & Szegedy), training-mode statistics.
//
// The paper's ResNets are BN networks; BN homogenizes per-layer gradient
// scales, which is a precondition for a single global learning rate (and
// hence momentum SGD / YellowFin) to be competitive with per-parameter
// methods like Adam.
#pragma once

#include "nn/module.hpp"

namespace yf::nn {

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(std::int64_t channels, double eps = 1e-5);

  /// [N, C, H, W] -> [N, C, H, W], normalized with batch statistics.
  autograd::Variable forward(const autograd::Variable& x) const;

  autograd::Variable gamma;  ///< scale, initialized to 1
  autograd::Variable beta;   ///< shift, initialized to 0

  double eps() const { return eps_; }

 private:
  double eps_;
};

}  // namespace yf::nn
