#include "nn/resnet.hpp"

#include "autograd/ops.hpp"

namespace yf::nn {

namespace ag = yf::autograd;

ResidualBlock::ResidualBlock(std::int64_t in_ch, std::int64_t out_ch, bool downsample,
                             tensor::Rng& rng, double residual_scale, bool with_batchnorm)
    : downsample_(downsample), residual_scale_(residual_scale) {
  const std::int64_t stride = downsample ? 2 : 1;
  conv1_ = std::make_shared<Conv2d>(in_ch, out_ch, 3, stride, 1, rng);
  conv2_ = std::make_shared<Conv2d>(out_ch, out_ch, 3, 1, 1, rng);
  register_module("conv1", conv1_);
  register_module("conv2", conv2_);
  if (with_batchnorm) {
    bn1_ = std::make_shared<BatchNorm2d>(out_ch);
    bn2_ = std::make_shared<BatchNorm2d>(out_ch);
    register_module("bn1", bn1_);
    register_module("bn2", bn2_);
  }
  if (downsample || in_ch != out_ch) {
    proj_ = std::make_shared<Conv2d>(in_ch, out_ch, 1, stride, 0, rng);
    register_module("proj", proj_);
  }
}

autograd::Variable ResidualBlock::forward(const autograd::Variable& x) const {
  auto branch = conv1_->forward(x);
  if (bn1_) branch = bn1_->forward(branch);
  branch = conv2_->forward(ag::relu(branch));
  if (bn2_) branch = bn2_->forward(branch);
  if (!bn1_) branch = ag::mul_scalar(branch, residual_scale_);
  auto skip = proj_ ? proj_->forward(x) : x;
  return ag::relu(ag::add(skip, branch));
}

MiniResNet::MiniResNet(const MiniResNetConfig& cfg, tensor::Rng& rng) {
  stem_ = std::make_shared<Conv2d>(cfg.in_channels, cfg.base_channels, 3, 1, 1, rng);
  register_module("stem", stem_);
  if (cfg.with_batchnorm) {
    stem_bn_ = std::make_shared<BatchNorm2d>(cfg.base_channels);
    register_module("stem_bn", stem_bn_);
  }
  std::int64_t ch = cfg.base_channels;
  std::int64_t idx = 0;
  for (int stage = 0; stage < 3; ++stage) {
    for (std::int64_t b = 0; b < cfg.blocks_per_stage; ++b) {
      const bool down = stage > 0 && b == 0;
      const std::int64_t out_ch = down ? ch * 2 : ch;
      auto block = std::make_shared<ResidualBlock>(ch, out_ch, down, rng, cfg.residual_scale,
                                                   cfg.with_batchnorm);
      register_module("block" + std::to_string(idx++), block);
      blocks_.push_back(std::move(block));
      ch = out_ch;
    }
  }
  head_ = std::make_shared<Linear>(ch, cfg.num_classes, rng);
  register_module("head", head_);
}

autograd::Variable MiniResNet::forward(const autograd::Variable& images) const {
  auto x = stem_->forward(images);
  if (stem_bn_) x = stem_bn_->forward(x);
  x = ag::relu(x);
  for (const auto& block : blocks_) x = block->forward(x);
  return head_->forward(ag::global_avg_pool(x));
}

}  // namespace yf::nn
