#include "nn/module.hpp"

#include <stdexcept>

#include "core/kernels.hpp"

namespace yf::nn {

std::vector<autograd::Variable> Module::parameters() const {
  std::vector<autograd::Variable> out;
  for (const auto& [name, var] : named_parameters()) out.push_back(var);
  return out;
}

std::vector<std::pair<std::string, autograd::Variable>> Module::named_parameters() const {
  std::vector<std::pair<std::string, autograd::Variable>> out;
  collect("", out);
  return out;
}

std::int64_t Module::parameter_count() const {
  std::int64_t n = 0;
  for (const auto& p : parameters()) n += p.value().size();
  return n;
}

void Module::zero_grad() {
  for (auto& p : parameters()) p.zero_grad();
}

autograd::Variable Module::register_parameter(std::string name, tensor::Tensor value) {
  autograd::Variable v(std::move(value), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), v);
  return v;
}

void Module::register_module(std::string name, std::shared_ptr<Module> child) {
  if (!child) throw std::invalid_argument("register_module: null child '" + name + "'");
  children_.emplace_back(std::move(name), std::move(child));
}

void Module::collect(const std::string& prefix,
                     std::vector<std::pair<std::string, autograd::Variable>>& out) const {
  for (const auto& [name, var] : params_) {
    out.emplace_back(prefix.empty() ? name : prefix + "." + name, var);
  }
  for (const auto& [name, child] : children_) {
    child->collect(prefix.empty() ? name : prefix + "." + name, out);
  }
}

tensor::Tensor flatten_grads(const std::vector<autograd::Variable>& params) {
  std::int64_t total = 0;
  for (const auto& p : params) total += p.value().size();
  tensor::Tensor flat(tensor::Shape{total});
  std::int64_t off = 0;
  for (const auto& p : params) {
    // A parameter nothing has flowed into has no materialized gradient;
    // its contribution is the zeros `flat` already holds.
    if (p.has_grad()) {
      const auto& g = p.grad();
      core::copy(flat.data().subspan(static_cast<std::size_t>(off), g.data().size()), g.data());
    }
    off += p.value().size();
  }
  return flat;
}

tensor::Tensor flatten_values(const std::vector<autograd::Variable>& params) {
  std::int64_t total = 0;
  for (const auto& p : params) total += p.value().size();
  tensor::Tensor flat(tensor::Shape{total});
  std::int64_t off = 0;
  for (const auto& p : params) {
    const auto& v = p.value();
    core::copy(flat.data().subspan(static_cast<std::size_t>(off), v.data().size()), v.data());
    off += v.size();
  }
  return flat;
}

double grad_sq_norm(const std::vector<autograd::Variable>& params) {
  double s = 0.0;
  // grad() on a gradient-free parameter is the shared empty tensor, whose
  // squared norm contributes exactly 0.
  for (const auto& p : params) s += core::squared_norm(p.grad().data());
  return s;
}

}  // namespace yf::nn
