// Encoder-decoder LSTM for the Table 1 / Fig. 6 stability experiments.
//
// Substitutes for the convolutional seq-to-seq model of Gehring et al.
// (DESIGN.md §2): what Table 1 exercises is optimizer stability under
// exploding gradients, which we reproduce by scaling recurrent weight init
// (`init_scale` > 1 makes the recurrent Jacobian spectral radius > 1 on
// steep regions, yielding occasional gradient explosions).
#pragma once

#include <memory>

#include "nn/embedding.hpp"
#include "nn/linear.hpp"
#include "nn/lstm.hpp"
#include "nn/module.hpp"

namespace yf::nn {

struct Seq2SeqConfig {
  std::int64_t src_vocab = 16;
  std::int64_t tgt_vocab = 16;
  std::int64_t embed_dim = 16;
  std::int64_t hidden = 32;
  std::int64_t layers = 1;
  double init_scale = 1.0;
};

class Seq2Seq : public Module {
 public:
  Seq2Seq(const Seq2SeqConfig& cfg, tensor::Rng& rng);

  /// Teacher-forced loss. src: [B, S] row-major, tgt: [B, T+1] row-major
  /// (tgt[:, 0] is BOS; predictions are tgt[:, 1:]).
  autograd::Variable loss(const std::vector<std::int64_t>& src, std::int64_t src_len,
                          const std::vector<std::int64_t>& tgt, std::int64_t tgt_len_plus1,
                          std::int64_t batch) const;

  /// Fraction of correctly predicted (argmax) target tokens; forward only.
  double token_accuracy(const std::vector<std::int64_t>& src, std::int64_t src_len,
                        const std::vector<std::int64_t>& tgt, std::int64_t tgt_len_plus1,
                        std::int64_t batch) const;

  const Seq2SeqConfig& config() const { return cfg_; }

 private:
  autograd::Variable decode_logits(const std::vector<std::int64_t>& src, std::int64_t src_len,
                                   const std::vector<std::int64_t>& tgt,
                                   std::int64_t tgt_len_plus1, std::int64_t batch) const;

  Seq2SeqConfig cfg_;
  std::shared_ptr<Embedding> src_embed_, tgt_embed_;
  std::shared_ptr<LSTM> encoder_, decoder_;
  std::shared_ptr<Linear> out_;

  // Per-call scratch reused across steps (see language_model.hpp).
  mutable std::vector<autograd::Variable> enc_steps_;
  mutable std::vector<autograd::Variable> dec_steps_;
  mutable std::vector<autograd::Variable> step_logits_;
  mutable std::vector<LSTMState> states_;
  mutable std::vector<std::int64_t> col_;
  mutable std::vector<std::int64_t> targets_;
};

}  // namespace yf::nn
