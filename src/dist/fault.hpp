// Deterministic fault injection for the distributed stack (DESIGN.md §14).
//
// FaultyStream wraps a ByteSource/ByteSink pair and perturbs WRITES at
// frame granularity: the codec emits exactly one write_all per frame
// (write_frame encodes header + payload into one scratch buffer), so a
// write-side fault maps 1:1 onto a protocol frame without the injector
// parsing anything. Reads pass through untouched -- a peer's faults
// arrive as whatever bytes its own injector let out, which is how real
// networks fail.
//
// Faults come from a FaultPlan: a seeded splitmix64 stream drawing one
// uniform per frame against cumulative probabilities, plus exact
// per-frame-index directives for deterministic tests. The plan grammar
// (YF_FAULT_PLAN, parsed with the same warn-and-fall-back contract as
// every YF_* knob):
//
//   seed=N,drop=P,trunc=P,corrupt=P,delay=P:MS[,drop@N][,trunc@N]
//                                           [,corrupt@N][,delay@N:MS]...
//
//   drop     swallow the frame entirely (write nothing)
//   trunc    write a strict prefix, poison the stream, throw FaultInjected
//            (a torn frame: the peer sees a mid-frame EOF)
//   corrupt  flip one payload-area byte in a scratch copy (checksum trips)
//   delay    sleep MS before writing (staleness/timeout pressure)
//
// Probabilities are cumulative per frame (at most one fault fires);
// `kind@N` directives override the draw for absolute frame index N. The
// same seed always yields the same fault sequence, which is what lets the
// chaos suites pin bit-identical trajectories THROUGH the faults.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "dist/socket.hpp"
#include "dist/wire.hpp"

namespace yf::dist {

/// Thrown by FaultyStream for faults that must look connection-fatal to
/// the caller (truncation poisons the stream mid-frame). A SocketError
/// subclass so the client's reconnect loop retries it like any transport
/// failure.
class FaultInjected : public SocketError {
 public:
  using SocketError::SocketError;
};

enum class FaultKind : std::uint8_t { kNone = 0, kDrop, kTruncate, kCorrupt, kDelay };

const char* fault_kind_name(FaultKind kind);

struct FaultPlan {
  std::uint64_t seed = 0;
  double drop = 0.0;
  double truncate = 0.0;
  double corrupt = 0.0;
  double delay = 0.0;
  std::int64_t delay_ms = 1;

  /// Exact-frame directive: fault `kind` on absolute frame index `frame`.
  struct Directive {
    std::uint64_t frame = 0;
    FaultKind kind = FaultKind::kNone;
    std::int64_t delay_ms = 1;
  };
  std::vector<Directive> directives;

  /// True when any fault can ever fire. An inactive plan makes
  /// FaultInjector::next() constant kNone (still drawing no randomness),
  /// and clients skip the wrapper entirely.
  bool active() const;

  /// Parse the grammar above; throws std::invalid_argument with the
  /// offending token on malformed input.
  static FaultPlan parse(const std::string& text);

  /// YF_FAULT_PLAN, with the repo-wide env contract: unset -> inactive
  /// plan; set but malformed -> one stderr warning + inactive plan.
  static FaultPlan from_env();
};

/// One fault decision per frame, drawn deterministically from the plan.
/// Shared by every connection of one endpoint (the frame counter spans
/// reconnects, so a retried frame sees a FRESH decision -- retrying the
/// same fault forever would make the retry loop a livelock by design).
/// Thread-safe: the master's connection threads share one injector.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  struct Decision {
    FaultKind kind = FaultKind::kNone;
    std::int64_t delay_ms = 0;
    std::uint64_t rand = 0;  ///< per-frame entropy for offset choices
  };

  /// Decision for the next frame (advances the frame counter).
  Decision next();

  std::uint64_t frames_seen() const;
  std::uint64_t faults_fired() const;
  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  mutable std::mutex mu_;
  std::uint64_t frame_ = 0;
  std::uint64_t rng_state_ = 0;
  bool rng_seeded_ = false;
  std::uint64_t fired_ = 0;
};

/// The wrapper: forwards reads, applies the injector's per-frame decision
/// to writes. One instance per connection (poison state is per stream);
/// the injector outlives and spans reconnections.
class FaultyStream final : public ByteSource, public ByteSink {
 public:
  FaultyStream(ByteSource& src, ByteSink& sink, FaultInjector& injector)
      : src_(&src), sink_(&sink), injector_(&injector) {}

  std::size_t read_some(std::span<std::byte> dst) override { return src_->read_some(dst); }
  void write_all(std::span<const std::byte> data) override;

 private:
  ByteSource* src_;
  ByteSink* sink_;
  FaultInjector* injector_;
  std::vector<std::byte> scratch_;  ///< corrupt-copy buffer, reused
  bool poisoned_ = false;           ///< a truncation left a torn frame out
};

}  // namespace yf::dist
