// Minimal blocking TCP transport for the distributed engine
// (DESIGN.md §12). POSIX sockets only -- the CI and deployment targets
// are Linux; there is no portability shim.
//
// TcpStream implements the framing layer's ByteSource/ByteSink: it owns
// the partial-I/O handling the codec relies on (read_some maps one recv,
// which may be short; write_all loops send until every byte is out,
// retrying EINTR and suppressing SIGPIPE). TcpListener wraps
// bind/listen/accept with an ephemeral-port mode (port 0: the kernel
// picks, port() reports) so tests and single-host deployments never
// race on a fixed port.
//
// Unblocking semantics (the drain-on-shutdown idiom needs them): a
// thread blocked in accept() is released by TcpListener::close(), and a
// thread blocked in read_some() by TcpStream::shutdown_rw() -- both via
// ::shutdown on the fd, which is async-signal-free and leaves the fd
// valid until the owner destructs.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>

#include "dist/wire.hpp"

namespace yf::dist {

/// OS-level socket failure (connect refused, send on closed peer, ...).
/// Distinct from WireError: a SocketError may be retryable (connect), a
/// WireError never is.
class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A read/write deadline expired (set_timeouts): the peer is alive at the
/// TCP level but not making protocol progress. A SocketError subclass so
/// generic retry loops treat it as "this connection is over", but typed
/// so tests and operators can tell a hang from a reset.
class SocketTimeout : public SocketError {
 public:
  using SocketError::SocketError;
};

/// Default deadline for every blocking dist socket call, from
/// YF_DIST_TIMEOUT_MS (core::checked_env_int; 0 disables deadlines).
/// Master connection threads and the client both consult this, so no dist
/// test can hang on a dead peer -- the acceptance bound of DESIGN.md §14.
std::int64_t default_dist_timeout_ms();

class TcpStream final : public ByteSource, public ByteSink {
 public:
  TcpStream() = default;
  /// Adopts an already-connected fd (the listener's accept path).
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream() override;

  TcpStream(TcpStream&& other) noexcept;
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connect to host:port, retrying refused connections until `retry_for`
  /// has elapsed (masters and workers race at startup; 0 = one attempt).
  static TcpStream connect(const std::string& host, std::uint16_t port,
                           std::chrono::milliseconds retry_for = std::chrono::milliseconds(0));

  bool valid() const { return fd_ >= 0; }

  /// One recv: at least 1 byte unless EOF (returns 0). A reset peer reads
  /// as EOF -- the dispatch loops treat "gone" uniformly. Throws
  /// SocketTimeout when a deadline set via set_timeouts() expires.
  std::size_t read_some(std::span<std::byte> dst) override;

  /// Loop send until all of `data` is written; throws SocketError
  /// (SocketTimeout when the send deadline expires).
  void write_all(std::span<const std::byte> data) override;

  /// Arm SO_RCVTIMEO/SO_SNDTIMEO on the fd: any later read_some/write_all
  /// that blocks longer than `ms` throws SocketTimeout. 0 disables (block
  /// forever, the pre-deadline behavior).
  void set_timeouts(std::int64_t ms);

  /// Shut down both directions: a peer or a local thread blocked in
  /// read_some() returns EOF. Safe to call from another thread; the fd
  /// stays valid until destruction.
  void shutdown_rw();

  void close();

 private:
  int fd_ = -1;
};

class TcpListener {
 public:
  /// Bind + listen on host:port; port 0 asks the kernel for an ephemeral
  /// port (read it back with port()).
  TcpListener(const std::string& host, std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Block for one connection; nullopt once close() has been called (the
  /// release path of the accept thread).
  std::optional<TcpStream> accept();

  /// Release any thread blocked in accept(); idempotent, callable from
  /// any thread. The fd itself is reclaimed by the destructor.
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace yf::dist
