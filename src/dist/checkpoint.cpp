#include "dist/checkpoint.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "dist/wire.hpp"

namespace yf::dist {

namespace {

// "YFCK" bytewise, like the wire magic: identical octets on any host.
constexpr std::uint8_t kMagic[4] = {0x59, 0x46, 0x43, 0x4b};
constexpr const char* kPrefix = "ckpt-";
constexpr const char* kSuffix = ".yfck";
// Zero-padded to a fixed width so lexical directory order is index order.
constexpr const char* kNameFormat = "%s/ckpt-%020lld%s";

void save_stats(core::StateWriter& w, const async::ApplyStats& s) {
  w.i64(s.update_index);
  w.u8(s.mu_hat_total ? 1 : 0);
  w.f64(s.mu_hat_total.value_or(0.0));
  w.f64(s.applied_momentum);
  w.f64(s.target_momentum);
}

async::ApplyStats load_stats(core::StateReader& r) {
  async::ApplyStats s;
  s.update_index = r.i64();
  const bool has_mu = r.u8() != 0;
  const double mu = r.f64();
  if (has_mu) s.mu_hat_total = mu;
  s.applied_momentum = r.f64();
  s.target_momentum = r.f64();
  return s;
}

[[noreturn]] void raise_errno(const char* what, const char* path) {
  throw CheckpointError(std::string(what) + " " + path + ": " + std::strerror(errno));
}

/// ckpt-<digits>.yfck -> index; anything else (including .tmp leftovers)
/// is not a checkpoint candidate.
bool parse_index(const char* name, long long* out) {
  const std::size_t plen = std::strlen(kPrefix);
  if (std::strncmp(name, kPrefix, plen) != 0) return false;
  const char* digits = name + plen;
  if (*digits == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(digits, &end, 10);
  if (end == digits || errno != 0 || v < 0) return false;
  return std::strcmp(end, kSuffix) == 0 ? (*out = v, true) : false;
}

bool format_path(char (&buf)[4096], const std::string& dir, long long index, const char* ext) {
  const int n = std::snprintf(buf, sizeof(buf), kNameFormat, dir.c_str(), index, ext);
  return n > 0 && n < static_cast<int>(sizeof(buf));
}

/// write-temp-then-rename with fsync: after this returns, the final name
/// either holds the complete bytes or does not exist at all.
void place_file_atomic(const std::string& dir, long long index, std::span<const std::byte> bytes) {
  char tmp[4096];
  char fin[4096];
  if (!format_path(tmp, dir, index, ".yfck.tmp") || !format_path(fin, dir, index, kSuffix)) {
    throw CheckpointError("checkpoint path too long under " + dir);
  }
  const int fd = ::open(tmp, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) raise_errno("open", tmp);
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, reinterpret_cast<const char*>(bytes.data()) + done,
                              bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp);
      errno = err;
      raise_errno("write", tmp);
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp);
    errno = err;
    raise_errno("fsync", tmp);
  }
  if (::close(fd) != 0) raise_errno("close", tmp);
  if (::rename(tmp, fin) != 0) {
    const int err = errno;
    ::unlink(tmp);
    errno = err;
    raise_errno("rename", fin);
  }
}

}  // namespace

void PushLedger::save_state(core::StateWriter& w) const {
  w.u64(next_worker_id);
  w.u64(entries.size());
  for (const auto& [id, entry] : entries) {
    w.u64(id);
    w.u64(entry.last_seq);
    save_stats(w, entry.reply);
  }
}

void PushLedger::load_state(core::StateReader& r) {
  entries.clear();
  next_worker_id = r.u64();
  if (next_worker_id == 0) throw core::StateError("PushLedger: next worker id 0 (reserved)");
  const std::uint64_t n = r.u64();
  if (n > (1u << 20)) throw core::StateError("PushLedger: implausible worker count");
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t id = r.u64();
    Entry entry;
    entry.last_seq = r.u64();
    entry.reply = load_stats(r);
    entries.emplace(id, entry);
  }
}

Checkpointer::Checkpointer(std::string dir, std::int64_t keep)
    : dir_(std::move(dir)), keep_(keep) {
  if (keep_ < 1) throw CheckpointError("Checkpointer: keep must be >= 1");
  struct stat st{};
  if (::stat(dir_.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    throw CheckpointError("Checkpointer: \"" + dir_ + "\" is not a writable directory");
  }
}

void Checkpointer::write(const async::ShardedParamServer& server, const PushLedger& ledger,
                         std::int64_t index) {
  payload_.clear();
  core::StateWriter w(payload_);
  w.u64(static_cast<std::uint64_t>(index));
  server.save_state(w);
  ledger.save_state(w);

  file_.clear();
  file_.reserve(kCheckpointHeaderBytes + payload_.size());
  for (const std::uint8_t m : kMagic) file_.push_back(static_cast<std::byte>(m));
  core::StateWriter h(file_);
  h.u32(kCheckpointVersion);
  h.u64(payload_.size());
  h.u64(fnv1a64(payload_));
  file_.insert(file_.end(), payload_.begin(), payload_.end());

  place_file_atomic(dir_, static_cast<long long>(index), file_);
  ++written_;
  prune();
}

void Checkpointer::prune() {
  prune_scratch_.clear();
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return;  // best effort: pruning never fails a write
  while (const dirent* ent = ::readdir(d)) {
    long long idx = 0;
    if (parse_index(ent->d_name, &idx)) prune_scratch_.push_back(idx);
  }
  ::closedir(d);
  if (prune_scratch_.size() <= static_cast<std::size_t>(keep_)) return;
  std::sort(prune_scratch_.begin(), prune_scratch_.end());
  const std::size_t drop = prune_scratch_.size() - static_cast<std::size_t>(keep_);
  for (std::size_t i = 0; i < drop; ++i) {
    char path[4096];
    if (format_path(path, dir_, prune_scratch_[i], kSuffix)) ::unlink(path);
  }
}

std::int64_t load_checkpoint(const std::string& path, async::ShardedParamServer& server,
                             PushLedger& ledger) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) raise_errno("open", path.c_str());
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    raise_errno("fstat", path.c_str());
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  std::vector<std::byte> bytes(size);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, reinterpret_cast<char*>(bytes.data()) + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      errno = err;
      raise_errno("read", path.c_str());
    }
    if (n == 0) break;  // file shrank underneath us; length check below
    done += static_cast<std::size_t>(n);
  }
  ::close(fd);

  // Validate EVERYTHING before a single byte reaches the server: a bad
  // candidate must be rejectable with the server state untouched.
  if (done != size || size < kCheckpointHeaderBytes) {
    throw CheckpointError("checkpoint " + path + ": truncated header");
  }
  for (std::size_t i = 0; i < 4; ++i) {
    if (std::to_integer<std::uint8_t>(bytes[i]) != kMagic[i]) {
      throw CheckpointError("checkpoint " + path + ": bad magic");
    }
  }
  core::StateReader header(std::span<const std::byte>(bytes).subspan(4, 20));
  const std::uint32_t version = header.u32();
  if (version != kCheckpointVersion) {
    throw CheckpointError("checkpoint " + path + ": unsupported version " +
                          std::to_string(version));
  }
  const std::uint64_t payload_len = header.u64();
  const std::uint64_t checksum = header.u64();
  const auto payload = std::span<const std::byte>(bytes).subspan(kCheckpointHeaderBytes);
  if (payload_len != payload.size()) {
    throw CheckpointError("checkpoint " + path + ": truncated payload");
  }
  if (fnv1a64(payload) != checksum) {
    throw CheckpointError("checkpoint " + path + ": payload checksum mismatch");
  }

  core::StateReader r(payload);
  const auto index = static_cast<std::int64_t>(r.u64());
  server.load_state(r);
  ledger.load_state(r);
  r.expect_end();
  return index;
}

std::optional<std::int64_t> restore_latest(const std::string& dir,
                                           async::ShardedParamServer& server,
                                           PushLedger& ledger) {
  std::vector<long long> indices;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return std::nullopt;
  while (const dirent* ent = ::readdir(d)) {
    long long idx = 0;
    if (parse_index(ent->d_name, &idx)) indices.push_back(idx);
  }
  ::closedir(d);
  std::sort(indices.begin(), indices.end(), std::greater<>());
  for (const long long idx : indices) {
    char path[4096];
    if (!format_path(path, dir, idx, kSuffix)) continue;
    try {
      return load_checkpoint(path, server, ledger);
    } catch (const CheckpointError& e) {
      std::fprintf(stderr, "yf: skipping invalid checkpoint: %s\n", e.what());
    } catch (const core::StateError& e) {
      std::fprintf(stderr, "yf: skipping incompatible checkpoint %s: %s\n", path, e.what());
    }
  }
  return std::nullopt;
}

}  // namespace yf::dist
