#include "dist/channel.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "autograd/tape.hpp"
#include "core/arena.hpp"
#include "core/env.hpp"

namespace yf::dist {

Engine channel_engine_from_env() {
  const std::string v = core::env_str("YF_ENGINE", "inproc");
  if (v == "socket") return Engine::kSocket;
  // "sync" and "server" are the bench harness's names for the two
  // in-process engines; both live on the inproc side of the channel.
  if (v == "inproc" || v == "sync" || v == "server") return Engine::kInproc;
  std::fprintf(stderr, "yf: unknown YF_ENGINE \"%s\" (want inproc|socket), using inproc\n",
               v.c_str());
  return Engine::kInproc;
}

const char* engine_name(Engine engine) {
  return engine == Engine::kSocket ? "socket" : "inproc";
}

async::ServerRunResult run_channel_workers(const std::vector<ChannelWorker>& workers,
                                           const ChannelRunOptions& opts) {
  if (workers.empty()) throw std::invalid_argument("run_channel_workers: no workers");
  for (const ChannelWorker& w : workers) {
    if (w.channel == nullptr) {
      throw std::invalid_argument("run_channel_workers: worker without a channel");
    }
  }

  struct PerWorker {
    std::vector<async::ApplyStats> stats;
    std::vector<double> losses;
    std::exception_ptr error;
  };
  std::vector<PerWorker> collected(workers.size());

  // Plain threads, not the compute pool: a socket worker parks in
  // blocking reads for most of a round trip, and parking pool workers
  // would starve the elementwise kernels the gradient computation needs.
  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (std::size_t w = 0; w < workers.size(); ++w) {
    threads.emplace_back([&workers, &collected, &opts, w] {
      PerWorker& out = collected[w];
      try {
        const ChannelWorker& worker = workers[w];
        core::ParamArena replica(worker.params);
        if (replica.size() != worker.channel->size()) {
          throw std::invalid_argument("run_channel_workers: replica size != master size");
        }
        autograd::TapeScope tape_scope(worker.tape);
        out.stats.reserve(static_cast<std::size_t>(opts.steps_per_worker));
        out.losses.reserve(static_cast<std::size_t>(opts.steps_per_worker));
        async::PullTicket ticket;
        for (std::int64_t s = 0; s < opts.steps_per_worker; ++s) {
          worker.channel->pull(replica.values(), ticket);
          replica.zero_grads();
          if (worker.tape) worker.tape->begin_step();
          const double loss = worker.grad_fn();
          if (opts.compute_delay_us > 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(opts.compute_delay_us));
          }
          out.stats.push_back(worker.channel->push(replica.grads(), ticket));
          out.losses.push_back(loss);
        }
      } catch (...) {
        out.error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const PerWorker& per : collected) {
    if (per.error) std::rethrow_exception(per.error);
  }

  std::vector<std::pair<async::ApplyStats, double>> merged;
  merged.reserve(workers.size() * static_cast<std::size_t>(opts.steps_per_worker));
  for (const PerWorker& per : collected) {
    for (std::size_t i = 0; i < per.stats.size(); ++i) {
      merged.emplace_back(per.stats[i], per.losses[i]);
    }
  }
  std::sort(merged.begin(), merged.end(), [](const auto& a, const auto& b) {
    return a.first.update_index < b.first.update_index;
  });

  async::ServerRunResult result;
  result.stats.reserve(merged.size());
  result.losses.reserve(merged.size());
  std::int64_t max_index = 0;
  for (auto& [stats, loss] : merged) {
    max_index = std::max(max_index, stats.update_index);
    result.stats.push_back(stats);
    result.losses.push_back(loss);
  }
  result.total_updates = max_index;
  return result;
}

}  // namespace yf::dist
