// MasterServer: the parameter-server master process (DESIGN.md §12).
//
// Owns the network face of an in-process async::ShardedParamServer: a
// TCP listener plus one blocking service thread per worker connection,
// each running the frame dispatch loop
//
//   hello        -> hello_ack (arena size, shard count)
//   pull         -> pull_reply (per-shard versions + parameter values)
//   push         -> push_reply (ApplyStats of the application)
//   shutdown     -> shutdown_ack, connection closes
//
// Pull and push frames land on the SAME begin_push/push_shard/end_push
// and Eq. 37 measurement paths the in-process workers use -- the server
// object neither knows nor cares that a gradient arrived over a socket,
// so Algorithm 5's closed-loop momentum feedback runs unchanged under
// genuine network staleness.
//
// Drain-on-shutdown idiom (shared with serve::LMServer, DESIGN.md §12):
// shutdown() first closes intake (the listener stops accepting, every
// connection's read side is shut down so no NEW frame can arrive), then
// drains -- a frame already being dispatched completes its reply -- then
// joins the accept and service threads, and only then flips stopped().
// Blocking entry points called after shutdown() throw std::logic_error
// instead of racing a dying object.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <thread>

#include "async/param_server.hpp"
#include "dist/socket.hpp"
#include "dist/wire.hpp"

namespace yf::dist {

struct MasterOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0: ephemeral; read back with port()
  std::size_t max_payload = kDefaultMaxPayload;
};

class MasterServer {
 public:
  /// Binds, listens, and starts accepting. `server` must outlive this
  /// object (the master is a transport, not an owner).
  MasterServer(async::ShardedParamServer& server, MasterOptions opts = {});
  ~MasterServer();

  MasterServer(const MasterServer&) = delete;
  MasterServer& operator=(const MasterServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Block until `n` connections have completed the shutdown handshake
  /// (worker sent kShutdown and was acked). Returns false on timeout.
  /// Throws std::logic_error after shutdown().
  bool wait_for_clients(std::int64_t n, std::chrono::milliseconds timeout);

  /// Drain-on-shutdown (idiom above). Idempotent; also run by the
  /// destructor.
  void shutdown();
  bool stopped() const;

  struct Stats {
    std::int64_t connections = 0;      ///< accepted
    std::int64_t clean_shutdowns = 0;  ///< completed the handshake
    std::int64_t pulls = 0;
    std::int64_t pushes = 0;
    std::int64_t errors = 0;  ///< error frames sent
  };
  Stats stats() const;

 private:
  struct Conn {
    TcpStream stream;
    std::thread thread;
  };

  void accept_loop();
  void serve_connection(TcpStream& stream);

  async::ShardedParamServer& server_;
  MasterOptions opts_;
  TcpListener listener_;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;  ///< clean_shutdowns advanced
  std::list<Conn> conns_;            ///< list: stable addresses for the threads
  Stats stats_;
  bool stopping_ = false;
  bool stopped_ = false;

  std::thread accept_thread_;
};

}  // namespace yf::dist
