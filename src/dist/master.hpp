// MasterServer: the parameter-server master process (DESIGN.md §12).
//
// Owns the network face of an in-process async::ShardedParamServer: a
// TCP listener plus one blocking service thread per worker connection,
// each running the frame dispatch loop
//
//   hello (worker id; 0 = assign)
//                -> hello_ack (arena size, shard count, worker id,
//                   last applied push seq for that worker)
//   pull         -> pull_reply (per-shard versions + parameter values)
//   push (seq)   -> push_reply (ApplyStats of the application)
//   shutdown     -> shutdown_ack, connection closes
//
// Pull and push frames land on the SAME begin_push/push_shard/end_push
// and Eq. 37 measurement paths the in-process workers use -- the server
// object neither knows nor cares that a gradient arrived over a socket,
// so Algorithm 5's closed-loop momentum feedback runs unchanged under
// genuine network staleness.
//
// Fault tolerance (DESIGN.md §14): every push carries a per-worker
// sequence number, and the master keeps a PushLedger of (last seq,
// cached reply) per worker -- a replayed push after a reconnect returns
// the ORIGINAL ApplyStats instead of double-applying, which is what
// keeps a faulty socket run bit-identical to the fault-free one. With a
// checkpoint directory configured the master snapshots server + ledger
// every `checkpoint_every` pushes; `restore` starts a fresh master from
// the newest valid snapshot. Apply + ledger-record run under the shared
// side of a checkpoint lock, so a snapshot can never separate a push
// from its dedup entry -- replay-after-restore stays exactly-once.
// Connection reads/writes are deadline-bounded (YF_DIST_TIMEOUT_MS), so
// a dead worker releases its service thread instead of pinning it.
//
// Drain-on-shutdown idiom (shared with serve::LMServer, DESIGN.md §12):
// shutdown() first closes intake (the listener stops accepting, every
// connection's read side is shut down so no NEW frame can arrive), then
// drains -- a frame already being dispatched completes its reply -- then
// joins the accept and service threads, and only then flips stopped().
// Blocking entry points called after shutdown() throw std::logic_error
// instead of racing a dying object.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>

#include "async/param_server.hpp"
#include "dist/checkpoint.hpp"
#include "dist/fault.hpp"
#include "dist/socket.hpp"
#include "dist/wire.hpp"

namespace yf::dist {

struct MasterOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0: ephemeral; read back with port()
  std::size_t max_payload = kDefaultMaxPayload;

  /// Per-connection read/write deadline in ms. 0 disables; -1 (default)
  /// means default_dist_timeout_ms(), i.e. YF_DIST_TIMEOUT_MS.
  std::int64_t timeout_ms = -1;

  /// Checkpointing: empty dir disables. `checkpoint_every` = pushes
  /// between snapshots (1 = snapshot every applied push, the setting the
  /// restart chaos suite pins); `restore` loads the newest valid
  /// checkpoint from `checkpoint_dir` before accepting connections.
  std::string checkpoint_dir;
  std::int64_t checkpoint_every = 16;
  std::int64_t checkpoint_keep = 2;
  bool restore = false;

  /// Test hook: wrap each connection's REPLY side in a FaultyStream
  /// driven by this injector (must outlive the master). The master never
  /// reads YF_FAULT_PLAN itself -- raw-frame protocol tests must stay
  /// valid under a chaos environment; only the client picks up the env
  /// plan.
  FaultInjector* injector = nullptr;
};

class MasterServer {
 public:
  /// Binds, listens, and starts accepting. `server` must outlive this
  /// object (the master is a transport, not an owner).
  MasterServer(async::ShardedParamServer& server, MasterOptions opts = {});
  ~MasterServer();

  MasterServer(const MasterServer&) = delete;
  MasterServer& operator=(const MasterServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Block until `n` connections have completed the shutdown handshake
  /// (worker sent kShutdown and was acked). Returns false on timeout.
  /// Throws std::logic_error after shutdown().
  bool wait_for_clients(std::int64_t n, std::chrono::milliseconds timeout);

  /// Drain-on-shutdown (idiom above). Idempotent; also run by the
  /// destructor.
  void shutdown();
  bool stopped() const;

  struct Stats {
    std::int64_t connections = 0;      ///< accepted
    std::int64_t clean_shutdowns = 0;  ///< completed the handshake
    std::int64_t pulls = 0;
    std::int64_t pushes = 0;           ///< pushes APPLIED (replays excluded)
    std::int64_t errors = 0;           ///< error frames sent
    std::int64_t disconnects = 0;      ///< clean EOF without the kShutdown handshake
    std::int64_t retried_pushes = 0;   ///< pushes arriving with an already-seen seq
    std::int64_t deduped_pushes = 0;   ///< of those, answered from the ledger cache
    std::int64_t checkpoints = 0;      ///< snapshots successfully placed
  };
  Stats stats() const;

  /// Update index recovered at construction, when opts.restore found a
  /// valid checkpoint; nullopt otherwise.
  std::optional<std::int64_t> restored() const { return restored_index_; }

 private:
  struct Conn {
    TcpStream stream;
    std::thread thread;
  };

  void accept_loop();
  void serve_connection(TcpStream& stream);
  void write_checkpoint(std::int64_t index);

  async::ShardedParamServer& server_;
  MasterOptions opts_;
  TcpListener listener_;
  std::int64_t timeout_ms_ = 0;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;  ///< clean_shutdowns advanced
  std::list<Conn> conns_;            ///< list: stable addresses for the threads
  Stats stats_;
  PushLedger ledger_;  ///< guarded by mu_; serialized under ckpt_mu_ + mu_
  bool stopping_ = false;
  bool stopped_ = false;

  /// Checkpoint barrier. Lock order: ckpt_mu_ before mu_. Push threads
  /// hold the SHARED side across apply + ledger record (concurrent pushes
  /// still overlap); write_checkpoint takes the exclusive side, so a
  /// snapshot sees either none or both halves of every push.
  std::shared_mutex ckpt_mu_;
  std::optional<Checkpointer> checkpointer_;
  std::optional<std::int64_t> restored_index_;

  std::thread accept_thread_;
};

}  // namespace yf::dist
