#include "dist/client.hpp"

#include <stdexcept>

namespace yf::dist {

RemoteParamClient::RemoteParamClient(const std::string& host, std::uint16_t port,
                                     std::chrono::milliseconds retry_for,
                                     std::size_t max_payload)
    : stream_(TcpStream::connect(host, port, retry_for)), max_payload_(max_payload) {
  request_.clear();
  round_trip(Op::kHello, Op::kHelloAck);
  PayloadReader in(reply_);
  size_ = static_cast<std::int64_t>(in.u64());
  shard_count_ = static_cast<std::int64_t>(in.u64());
  in.expect_end();
  if (size_ <= 0 || shard_count_ <= 0 || shard_count_ > size_) {
    throw WireError("hello_ack with implausible geometry: size " + std::to_string(size_) +
                    ", shards " + std::to_string(shard_count_));
  }
}

RemoteParamClient::~RemoteParamClient() {
  try {
    shutdown();
  } catch (...) {
    // Destructor path: the master may already be gone; closing is enough.
  }
}

void RemoteParamClient::round_trip(Op request_op, Op reply_op) {
  write_frame(stream_, request_op, request_, scratch_);
  if (!read_frame(stream_, header_, reply_, max_payload_)) {
    throw WireError(std::string("connection closed awaiting ") + op_name(reply_op));
  }
  if (header_.op == Op::kError) {
    PayloadReader in(reply_);
    throw WireError("master error: " + in.str());
  }
  if (header_.op != reply_op) {
    throw WireError(std::string("expected ") + op_name(reply_op) + ", got " +
                    op_name(header_.op));
  }
}

void RemoteParamClient::pull(std::span<double> dst, async::PullTicket& ticket) {
  if (stopped_) throw std::logic_error("RemoteParamClient::pull after shutdown");
  if (static_cast<std::int64_t>(dst.size()) != size_) {
    throw std::invalid_argument("pull buffer size != master arena size");
  }
  request_.clear();
  round_trip(Op::kPull, Op::kPullReply);
  PayloadReader in(reply_);
  const std::uint64_t k = in.u64();
  if (k != static_cast<std::uint64_t>(shard_count_)) {
    throw WireError("pull_reply with " + std::to_string(k) + " shard versions, expected " +
                    std::to_string(shard_count_));
  }
  ticket.versions.resize(static_cast<std::size_t>(k));
  in.i64_span(ticket.versions);
  in.f64_span(dst);
  in.expect_end();
}

async::ApplyStats RemoteParamClient::push(std::span<double> grad,
                                          const async::PullTicket& ticket) {
  if (stopped_) throw std::logic_error("RemoteParamClient::push after shutdown");
  if (static_cast<std::int64_t>(grad.size()) != size_) {
    throw std::invalid_argument("push gradient size != master arena size");
  }
  if (ticket.versions.size() != static_cast<std::size_t>(shard_count_)) {
    throw std::invalid_argument("push ticket does not come from a pull on this channel");
  }
  request_.clear();
  PayloadWriter out(request_);
  out.u64(static_cast<std::uint64_t>(ticket.versions.size()));
  out.i64_span(ticket.versions);
  out.f64_span(grad);
  round_trip(Op::kPush, Op::kPushReply);
  PayloadReader in(reply_);
  async::ApplyStats stats;
  stats.update_index = in.i64();
  const bool has_mu = in.u8() != 0;
  const double mu_hat = in.f64();
  if (has_mu) stats.mu_hat_total = mu_hat;
  stats.applied_momentum = in.f64();
  stats.target_momentum = in.f64();
  in.expect_end();
  return stats;
}

void RemoteParamClient::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  if (!stream_.valid()) return;
  request_.clear();
  round_trip(Op::kShutdown, Op::kShutdownAck);
  stream_.close();
}

}  // namespace yf::dist
