#include "dist/client.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

namespace yf::dist {

RemoteParamClient::RemoteParamClient(ClientOptions opts) : opts_(std::move(opts)) {
  if (opts_.max_attempts < 1) {
    throw std::invalid_argument("ClientOptions: max_attempts must be >= 1");
  }
  timeout_ms_ = opts_.timeout_ms >= 0 ? opts_.timeout_ms : default_dist_timeout_ms();
  if (opts_.injector != nullptr) {
    injector_ = opts_.injector;
  } else {
    const FaultPlan plan = FaultPlan::from_env();
    if (plan.active()) {
      env_injector_.emplace(plan);
      injector_ = &*env_injector_;
    }
  }
  // First contact runs through the same retry loop as every round trip:
  // with chaos armed even the hello can be dropped or torn.
  for (std::int64_t attempt = 0;; ++attempt) {
    try {
      ensure_connected();
      return;
    } catch (const WireError&) {
      if (!retry_after(attempt)) throw;
    } catch (const SocketError&) {
      if (!retry_after(attempt)) throw;
    }
  }
}

RemoteParamClient::RemoteParamClient(const std::string& host, std::uint16_t port,
                                     std::chrono::milliseconds retry_for,
                                     std::size_t max_payload)
    : RemoteParamClient(ClientOptions{.host = host,
                                      .port = port,
                                      .connect_retry_for = retry_for,
                                      .max_payload = max_payload}) {}

RemoteParamClient::~RemoteParamClient() {
  try {
    shutdown();
  } catch (...) {
    // Destructor path: the master may already be gone; closing is enough.
  }
}

void RemoteParamClient::ensure_connected() {
  if (connected_) return;
  faulty_.reset();
  stream_ = TcpStream::connect(opts_.host, opts_.port, opts_.connect_retry_for);
  if (timeout_ms_ > 0) stream_.set_timeouts(timeout_ms_);
  if (injector_ != nullptr) faulty_.emplace(stream_, stream_, *injector_);
  // kHello with the remembered worker id (0 on first contact: assign me
  // one). Staged in its own buffer so a pending push request replays
  // byte-identically after this reconnect.
  hello_.clear();
  PayloadWriter out(hello_);
  out.u64(worker_id_);
  write_frame(sink(), Op::kHello, hello_, scratch_);
  if (!read_frame(src(), header_, reply_, opts_.max_payload)) {
    throw WireError("connection closed awaiting hello_ack");
  }
  if (header_.op == Op::kError) {
    PayloadReader in(reply_);
    throw WireError("master error: " + in.str());
  }
  if (header_.op != Op::kHelloAck) {
    throw WireError(std::string("expected hello_ack, got ") + op_name(header_.op));
  }
  PayloadReader in(reply_);
  const auto size = static_cast<std::int64_t>(in.u64());
  const auto shards = static_cast<std::int64_t>(in.u64());
  const std::uint64_t id = in.u64();
  in.u64();  // master's last applied seq for us; the push ledger makes
             // replay safe without the client acting on it
  in.expect_end();
  if (size <= 0 || shards <= 0 || shards > size || id == 0) {
    throw WireError("hello_ack with implausible geometry: size " + std::to_string(size) +
                    ", shards " + std::to_string(shards) + ", worker id " + std::to_string(id));
  }
  if (size_ == 0) {
    size_ = size;
    shard_count_ = shards;
  } else if (size != size_ || shards != shard_count_) {
    // NOT retryable (plain runtime_error escapes the retry loop): this is
    // a different master, and our trajectory does not live there.
    throw std::runtime_error("master geometry changed across reconnect: size " +
                             std::to_string(size) + " vs " + std::to_string(size_) +
                             ", shards " + std::to_string(shards) + " vs " +
                             std::to_string(shard_count_));
  }
  if (worker_id_ != 0 && id != worker_id_) {
    throw std::runtime_error("master reassigned worker id " + std::to_string(worker_id_) +
                             " to " + std::to_string(id) + " across reconnect");
  }
  worker_id_ = id;
  connected_ = true;
}

void RemoteParamClient::disconnect() {
  faulty_.reset();
  if (stream_.valid()) stream_.close();
  connected_ = false;
}

std::chrono::milliseconds RemoteParamClient::backoff_delay(std::int64_t attempt) const {
  const std::int64_t cap = std::max<std::int64_t>(0, opts_.backoff_cap.count());
  std::int64_t d = std::max<std::int64_t>(0, opts_.backoff_base.count());
  for (std::int64_t i = 0; i < attempt && d < cap; ++i) d *= 2;
  return std::chrono::milliseconds(std::min(d, cap));
}

bool RemoteParamClient::retry_after(std::int64_t attempt) {
  disconnect();
  reconnects_ += 1;
  if (attempt + 1 >= opts_.max_attempts) return false;
  std::this_thread::sleep_for(backoff_delay(attempt));
  return true;
}

void RemoteParamClient::round_trip(Op request_op, Op reply_op) {
  for (std::int64_t attempt = 0;; ++attempt) {
    try {
      ensure_connected();
      write_frame(sink(), request_op, request_, scratch_);
      if (!read_frame(src(), header_, reply_, opts_.max_payload)) {
        throw WireError(std::string("connection closed awaiting ") + op_name(reply_op));
      }
      if (header_.op == Op::kError) {
        PayloadReader in(reply_);
        throw WireError("master error: " + in.str());
      }
      if (header_.op != reply_op) {
        throw WireError(std::string("expected ") + op_name(reply_op) + ", got " +
                        op_name(header_.op));
      }
      return;
    } catch (const WireError&) {
      if (!retry_after(attempt)) throw;
    } catch (const SocketError&) {
      if (!retry_after(attempt)) throw;
    }
  }
}

void RemoteParamClient::pull(std::span<double> dst, async::PullTicket& ticket) {
  if (stopped_) throw std::logic_error("RemoteParamClient::pull after shutdown");
  if (static_cast<std::int64_t>(dst.size()) != size_) {
    throw std::invalid_argument("pull buffer size != master arena size");
  }
  request_.clear();
  round_trip(Op::kPull, Op::kPullReply);
  PayloadReader in(reply_);
  const std::uint64_t k = in.u64();
  if (k != static_cast<std::uint64_t>(shard_count_)) {
    throw WireError("pull_reply with " + std::to_string(k) + " shard versions, expected " +
                    std::to_string(shard_count_));
  }
  ticket.versions.resize(static_cast<std::size_t>(k));
  in.i64_span(ticket.versions);
  in.f64_span(dst);
  in.expect_end();
}

async::ApplyStats RemoteParamClient::push(std::span<double> grad,
                                          const async::PullTicket& ticket) {
  if (stopped_) throw std::logic_error("RemoteParamClient::push after shutdown");
  if (static_cast<std::int64_t>(grad.size()) != size_) {
    throw std::invalid_argument("push gradient size != master arena size");
  }
  if (ticket.versions.size() != static_cast<std::size_t>(shard_count_)) {
    throw std::invalid_argument("push ticket does not come from a pull on this channel");
  }
  // The seq is assigned ONCE, here; retries replay the identical bytes,
  // and the master's ledger collapses any duplicate application.
  request_.clear();
  PayloadWriter out(request_);
  out.u64(++push_seq_);
  out.u64(static_cast<std::uint64_t>(ticket.versions.size()));
  out.i64_span(ticket.versions);
  out.f64_span(grad);
  round_trip(Op::kPush, Op::kPushReply);
  PayloadReader in(reply_);
  async::ApplyStats stats;
  stats.update_index = in.i64();
  const bool has_mu = in.u8() != 0;
  const double mu_hat = in.f64();
  if (has_mu) stats.mu_hat_total = mu_hat;
  stats.applied_momentum = in.f64();
  stats.target_momentum = in.f64();
  in.expect_end();
  return stats;
}

void RemoteParamClient::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  request_.clear();
  round_trip(Op::kShutdown, Op::kShutdownAck);
  disconnect();
}

}  // namespace yf::dist
