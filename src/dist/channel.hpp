// ParamChannel: the one engine interface every worker trains against
// (DESIGN.md §12).
//
// A channel is a worker's view of the parameter master: pull the current
// parameters (with per-shard versions), push a gradient computed at those
// versions, get the ApplyStats back. Two implementations exist --
//
//   InprocChannel       zero-cost adapter over an in-process
//                       ShardedParamServer (the single-process fast path)
//   RemoteParamClient   the same calls as wire frames over a TCP
//                       connection to a MasterServer (dist/client.hpp)
//
// -- selected by YF_ENGINE=inproc|socket (channel_engine_from_env), so
// worker code, the closed-loop YellowFin scenarios, and the trajectory
// tests run UNCHANGED on both. The contract that makes that meaningful:
// with one worker, pull/push round-trips are sequential and the socket
// serialization is bit-exact (doubles travel as IEEE-754 bit patterns),
// so a one-worker socket trajectory is EXPECT_EQ-bit-identical to the
// in-process engine (tests/dist_test.cpp pins this for closed-loop
// YellowFin).
//
// Threading: a channel instance is single-owner -- one worker, one
// channel (a RemoteParamClient is one socket conversation). Concurrency
// comes from multiple channels against one master, exactly as multiple
// workers hit one ShardedParamServer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "async/param_server.hpp"

namespace yf::dist {

class ParamChannel {
 public:
  virtual ~ParamChannel() = default;

  /// Total scalars served (the master arena size).
  virtual std::int64_t size() const = 0;
  virtual std::int64_t shard_count() const = 0;

  /// Copy the master parameters into `dst` (size() scalars) and record
  /// the per-shard versions read into `ticket` (allocation-free once the
  /// ticket's capacity is warm, like the in-process pull).
  virtual void pull(std::span<double> dst, async::PullTicket& ticket) = 0;

  /// Apply one gradient computed at the iterates `ticket` describes.
  /// `grad` may be modified in place (the in-process optimizer's global
  /// stage clips it; the socket channel leaves it untouched -- the master
  /// clips its own copy, same values either way).
  virtual async::ApplyStats push(std::span<double> grad, const async::PullTicket& ticket) = 0;
};

/// The single-process fast path: delegates straight to a
/// ShardedParamServer the caller owns.
class InprocChannel final : public ParamChannel {
 public:
  explicit InprocChannel(async::ShardedParamServer& server) : server_(&server) {}

  std::int64_t size() const override { return server_->size(); }
  std::int64_t shard_count() const override { return server_->shard_count(); }
  void pull(std::span<double> dst, async::PullTicket& ticket) override {
    server_->pull(dst, ticket);
  }
  async::ApplyStats push(std::span<double> grad, const async::PullTicket& ticket) override {
    return server_->push(grad, ticket);
  }

 private:
  async::ShardedParamServer* server_;
};

/// Engine selection for harnesses that can run either side of the
/// channel: YF_ENGINE=inproc (default) or socket. The bench-only values
/// "sync" and "server" name in-process engines too and map to kInproc; an
/// unknown value warns once and falls back to inproc.
enum class Engine { kInproc, kSocket };
Engine channel_engine_from_env();
const char* engine_name(Engine engine);

// ---------------------------------------------------------------------------
// Worker harness over channels: the run_workers loop (async/param_server)
// generalized to any ParamChannel, so the same scenario drives in-process
// shards or a remote master. One thread per worker (workers block on
// channel I/O); each worker needs its OWN channel.
// ---------------------------------------------------------------------------

struct ChannelWorker {
  ParamChannel* channel = nullptr;  ///< not owned; one worker per channel
  std::vector<autograd::Variable> params;
  std::function<double()> grad_fn;
  /// Optional per-worker tape, installed on the worker thread for the
  /// whole run (same ownership contract as async::ServerWorker::tape).
  autograd::GraphTape* tape = nullptr;
};

struct ChannelRunOptions {
  std::int64_t steps_per_worker = 100;
  std::int64_t compute_delay_us = 0;  ///< simulated gradient latency
};

/// Run every worker for steps_per_worker pull/compute/push rounds.
/// Results merge in update_index order like async::run_workers; the
/// single-worker sequence (pull, zero, grad, push) is statement-for-
/// statement the run_workers loop, which is what makes channel and
/// in-process trajectories comparable bit for bit.
async::ServerRunResult run_channel_workers(const std::vector<ChannelWorker>& workers,
                                           const ChannelRunOptions& opts = {});

}  // namespace yf::dist
