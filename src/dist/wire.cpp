#include "dist/wire.hpp"

#include <bit>
#include <cstring>

namespace yf::dist {

namespace {

// "YFWP" as individual bytes; written/compared bytewise so the magic is
// the same octet sequence on any host.
constexpr std::uint8_t kMagic[4] = {0x59, 0x46, 0x57, 0x50};

void put_le(std::vector<std::byte>& out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t get_le(std::span<const std::byte> in, std::size_t offset, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(in[offset + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

}  // namespace

bool op_known(std::uint16_t op) {
  return op >= static_cast<std::uint16_t>(Op::kHello) && op <= static_cast<std::uint16_t>(Op::kError);
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kHello: return "hello";
    case Op::kHelloAck: return "hello_ack";
    case Op::kPull: return "pull";
    case Op::kPullReply: return "pull_reply";
    case Op::kPush: return "push";
    case Op::kPushReply: return "push_reply";
    case Op::kShutdown: return "shutdown";
    case Op::kShutdownAck: return "shutdown_ack";
    case Op::kError: return "error";
  }
  return "unknown";
}

std::uint64_t fnv1a64(std::span<const std::byte> data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::byte b : data) {
    h ^= std::to_integer<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

bool read_exact(ByteSource& src, std::span<std::byte> dst, const char* what) {
  std::size_t filled = 0;
  while (filled < dst.size()) {
    const std::size_t n = src.read_some(dst.subspan(filled));
    if (n == 0) {
      if (filled == 0) return false;
      throw WireError(std::string("torn frame: stream ended inside ") + what);
    }
    filled += n;
  }
  return true;
}

void encode_frame(std::vector<std::byte>& out, Op op, std::span<const std::byte> payload) {
  out.reserve(out.size() + kHeaderBytes + payload.size());
  for (const std::uint8_t m : kMagic) out.push_back(static_cast<std::byte>(m));
  put_le(out, kWireVersion, 2);
  put_le(out, static_cast<std::uint16_t>(op), 2);
  put_le(out, 0, 4);  // shard (reserved in v1)
  put_le(out, 0, 8);  // shard version (reserved in v1)
  put_le(out, payload.size(), 8);
  put_le(out, fnv1a64(payload), 8);
  put_le(out, 0, 4);  // reserved
  out.insert(out.end(), payload.begin(), payload.end());
}

void write_frame(ByteSink& sink, Op op, std::span<const std::byte> payload,
                 std::vector<std::byte>& scratch) {
  scratch.clear();
  encode_frame(scratch, op, payload);
  sink.write_all(scratch);
}

bool read_frame(ByteSource& src, FrameHeader& header, std::vector<std::byte>& payload,
                std::size_t max_payload) {
  std::byte raw[kHeaderBytes];
  if (!read_exact(src, raw, "frame header")) return false;
  const std::span<const std::byte> h(raw, kHeaderBytes);
  for (std::size_t i = 0; i < 4; ++i) {
    if (std::to_integer<std::uint8_t>(h[i]) != kMagic[i]) {
      throw WireError("bad frame magic (desynchronized or not a YF peer)");
    }
  }
  header.version = static_cast<std::uint16_t>(get_le(h, 4, 2));
  if (header.version != kWireVersion) {
    throw WireError("unsupported wire version " + std::to_string(header.version) + " (want " +
                    std::to_string(kWireVersion) + ")");
  }
  const auto op_raw = static_cast<std::uint16_t>(get_le(h, 6, 2));
  if (!op_known(op_raw)) {
    throw WireError("unknown frame op " + std::to_string(op_raw));
  }
  header.op = static_cast<Op>(op_raw);
  header.shard = static_cast<std::uint32_t>(get_le(h, 8, 4));
  header.shard_version = get_le(h, 12, 8);
  if (header.shard != 0 || header.shard_version != 0) {
    throw WireError("nonzero shard fields in a v1 frame (reserved)");
  }
  header.payload_len = get_le(h, 20, 8);
  header.checksum = get_le(h, 28, 8);
  if (get_le(h, 36, 4) != 0) {
    throw WireError("nonzero reserved header bytes");
  }
  // Bound BEFORE allocating: an oversized length is rejected from the
  // header alone, so a corrupt peer cannot make us reserve gigabytes.
  if (header.payload_len > max_payload) {
    throw WireError("frame payload " + std::to_string(header.payload_len) +
                    " exceeds the negotiated bound " + std::to_string(max_payload));
  }
  payload.resize(static_cast<std::size_t>(header.payload_len));
  if (!payload.empty() && !read_exact(src, payload, "frame payload")) {
    throw WireError("torn frame: stream ended inside frame payload");
  }
  const std::uint64_t sum = fnv1a64(payload);
  if (sum != header.checksum) {
    throw WireError("payload checksum mismatch (frame corrupted in transit)");
  }
  return true;
}

// ---------------------------------------------------------------------------
// PayloadWriter / PayloadReader
// ---------------------------------------------------------------------------

void PayloadWriter::u8(std::uint8_t v) { put_le(*out_, v, 1); }
void PayloadWriter::u16(std::uint16_t v) { put_le(*out_, v, 2); }
void PayloadWriter::u32(std::uint32_t v) { put_le(*out_, v, 4); }
void PayloadWriter::u64(std::uint64_t v) { put_le(*out_, v, 8); }
void PayloadWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
void PayloadWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void PayloadWriter::f64_span(std::span<const double> v) {
  out_->reserve(out_->size() + v.size() * 8);
  for (const double d : v) f64(d);
}

void PayloadWriter::i64_span(std::span<const std::int64_t> v) {
  out_->reserve(out_->size() + v.size() * 8);
  for (const std::int64_t x : v) i64(x);
}

void PayloadWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  for (const char c : s) out_->push_back(static_cast<std::byte>(c));
}

std::span<const std::byte> PayloadReader::take(std::size_t n, const char* what) {
  if (n > data_.size() - pos_) {
    throw WireError(std::string("payload underrun reading ") + what);
  }
  const auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::uint8_t PayloadReader::u8() { return static_cast<std::uint8_t>(get_le(take(1, "u8"), 0, 1)); }
std::uint16_t PayloadReader::u16() {
  return static_cast<std::uint16_t>(get_le(take(2, "u16"), 0, 2));
}
std::uint32_t PayloadReader::u32() {
  return static_cast<std::uint32_t>(get_le(take(4, "u32"), 0, 4));
}
std::uint64_t PayloadReader::u64() { return get_le(take(8, "u64"), 0, 8); }
std::int64_t PayloadReader::i64() { return static_cast<std::int64_t>(u64()); }
double PayloadReader::f64() { return std::bit_cast<double>(u64()); }

void PayloadReader::f64_span(std::span<double> dst) {
  const auto bytes = take(dst.size() * 8, "f64 span");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = std::bit_cast<double>(get_le(bytes, i * 8, 8));
  }
}

void PayloadReader::i64_span(std::span<std::int64_t> dst) {
  const auto bytes = take(dst.size() * 8, "i64 span");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = static_cast<std::int64_t>(get_le(bytes, i * 8, 8));
  }
}

std::string PayloadReader::str(std::size_t max_len) {
  const std::uint32_t len = u32();
  if (len > max_len) throw WireError("payload string exceeds bound");
  const auto bytes = take(len, "string");
  std::string s;
  s.reserve(len);
  for (const std::byte b : bytes) s.push_back(static_cast<char>(std::to_integer<std::uint8_t>(b)));
  return s;
}

void PayloadReader::expect_end() const {
  if (pos_ != data_.size()) {
    throw WireError("trailing bytes after payload (peer speaking a newer dialect?)");
  }
}

}  // namespace yf::dist
