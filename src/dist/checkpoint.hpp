// Master checkpoint/restore and the exactly-once push ledger
// (DESIGN.md §14).
//
// A checkpoint file is one atomic snapshot of everything a restarted
// master needs to continue the trajectory bit-identically:
//
//   offset size field
//   0      4    magic        "YFCK" (0x59 0x46 0x43 0x4b)
//   4      4    version      checkpoint format version, currently 1
//   8      8    payload_len  bytes following the header
//   16     8    checksum     FNV-1a 64 over the payload bytes
//   24     ..   payload      u64 update index,
//                            ShardedParamServer::save_state (values,
//                            shard versions + histories, tuner/optimizer
//                            state), PushLedger::save_state
//
// Placement is write-temp-then-rename: the bytes land in
// `ckpt-<index>.yfck.tmp`, are fsync'd, and only then renamed to
// `ckpt-<index>.yfck` -- POSIX rename is atomic within a directory, so a
// reader never observes a half-written checkpoint under its final name.
// A crash mid-write leaves a stale .tmp that the next write simply
// replaces. The checksum catches the remaining failure mode (a torn or
// bit-rotted file that WAS fully renamed): restore_latest() verifies it
// before a single byte reaches the server, and falls back to the next
// older checkpoint on any validation failure.
//
// The steady-state write path is allocation-bounded: serialization reuses
// warm byte buffers, paths are built with snprintf into stack arrays, and
// the file I/O is raw POSIX (open/write/fsync/rename) rather than stdio
// -- pinned by the alloc_count suite.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "async/param_server.hpp"
#include "core/state.hpp"

namespace yf::dist {

/// A checkpoint file that cannot be read, validated, or placed. Restore
/// paths treat it as "skip this candidate"; write paths as fatal.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kCheckpointVersion = 1;
inline constexpr std::size_t kCheckpointHeaderBytes = 24;

/// Exactly-once bookkeeping for the push protocol: per worker, the last
/// applied push sequence number and the ApplyStats reply it produced. A
/// replayed push (same seq after a reconnect) is answered from `reply`
/// without touching the server -- the worker cannot tell a lost reply
/// from a lost request, so the master must be able to answer both the
/// same way. Lives in the checkpoint payload: dedup must survive a master
/// restart or a replay after restore would double-apply. std::map, not
/// unordered, so serialization order (and thus checkpoint bytes) is
/// deterministic.
struct PushLedger {
  struct Entry {
    std::uint64_t last_seq = 0;
    async::ApplyStats reply{};
  };

  std::map<std::uint64_t, Entry> entries;  ///< worker id -> dedup entry
  std::uint64_t next_worker_id = 1;        ///< ids the master hands out (kHello 0)

  void save_state(core::StateWriter& w) const;
  void load_state(core::StateReader& r);
};

/// Periodic checkpoint writer; one per master. Not thread-safe -- the
/// master serializes write() against pushes with its checkpoint lock.
class Checkpointer {
 public:
  /// `dir` must exist and be writable; `keep` newest checkpoints are
  /// retained, older ones pruned after each successful write.
  explicit Checkpointer(std::string dir, std::int64_t keep = 2);

  /// Snapshot server + ledger as ckpt-<index>.yfck (atomic, checksummed),
  /// then prune. `index` must increase across calls (the master passes
  /// the update index, which survives restore and keeps increasing).
  void write(const async::ShardedParamServer& server, const PushLedger& ledger,
             std::int64_t index);

  const std::string& dir() const { return dir_; }
  std::int64_t written() const { return written_; }

 private:
  void prune();

  std::string dir_;
  std::int64_t keep_;
  std::int64_t written_ = 0;
  std::vector<std::byte> payload_;       ///< serialized state, reused
  std::vector<std::byte> file_;          ///< header + payload, reused
  std::vector<long long> prune_scratch_; ///< indices seen during prune
};

/// Load one checkpoint file into `server` and `ledger`; returns its
/// update index. Header/checksum validation happens BEFORE any state is
/// touched (CheckpointError); a layout mismatch inside the payload
/// (core::StateError) can leave the server partially restored -- callers
/// recover by loading another checkpoint, which overwrites every field.
std::int64_t load_checkpoint(const std::string& path, async::ShardedParamServer& server,
                             PushLedger& ledger);

/// Restore from the newest valid ckpt-*.yfck in `dir`: candidates are
/// tried newest-first, invalid or unreadable ones skipped with a stderr
/// note (the reject-and-fall-back contract). Returns the restored update
/// index, or nullopt when no candidate loads (the server keeps its
/// freshly constructed state).
std::optional<std::int64_t> restore_latest(const std::string& dir,
                                           async::ShardedParamServer& server, PushLedger& ledger);

}  // namespace yf::dist
