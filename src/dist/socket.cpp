#include "dist/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "core/env.hpp"

namespace yf::dist {

namespace {

[[noreturn]] void raise_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw SocketError("bad IPv4 address \"" + host + "\" (the transport takes numeric addresses)");
  }
  return addr;
}

int new_tcp_fd() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  // Pull/push are latency-bound request/reply round trips; Nagle would
  // add a delayed-ack stall to every one.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

std::int64_t default_dist_timeout_ms() {
  const std::int64_t ms = core::checked_env_int("YF_DIST_TIMEOUT_MS", 30000);
  return ms < 0 ? 30000 : ms;
}

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port,
                             std::chrono::milliseconds retry_for) {
  const sockaddr_in addr = make_addr(host, port);
  const auto deadline = std::chrono::steady_clock::now() + retry_for;
  for (;;) {
    const int fd = new_tcp_fd();
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      return TcpStream(fd);
    }
    const int err = errno;
    ::close(fd);
    // Refusals are the normal master/worker startup race; retry them
    // inside the budget. Anything else (unreachable, EACCES) is final.
    const bool retryable = err == ECONNREFUSED || err == ECONNRESET || err == ETIMEDOUT;
    if (!retryable || std::chrono::steady_clock::now() >= deadline) {
      errno = err;
      raise_errno("connect to " + host + ":" + std::to_string(port));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

std::size_t TcpStream::read_some(std::span<std::byte> dst) {
  if (fd_ < 0) throw SocketError("read_some on a closed stream");
  for (;;) {
    const ssize_t n = ::recv(fd_, dst.data(), dst.size(), 0);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n == 0) return 0;  // orderly EOF
    if (errno == EINTR) continue;
    // A peer that vanished (reset) or a local shutdown_rw() both mean
    // "this conversation is over" -- surface as EOF, not an exception,
    // so dispatch loops wind down the same way for every cause.
    if (errno == ECONNRESET || errno == ESHUTDOWN) return 0;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw SocketTimeout("recv deadline expired (peer alive but silent?)");
    }
    raise_errno("recv");
  }
}

void TcpStream::write_all(std::span<const std::byte> data) {
  if (fd_ < 0) throw SocketError("write_all on a closed stream");
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a closed peer must surface as EPIPE, not SIGPIPE.
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw SocketTimeout("send deadline expired (peer not draining?)");
      }
      raise_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void TcpStream::set_timeouts(std::int64_t ms) {
  if (fd_ < 0) throw SocketError("set_timeouts on a closed stream");
  if (ms < 0) throw SocketError("set_timeouts: negative deadline");
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    raise_errno("setsockopt(SO_RCVTIMEO/SO_SNDTIMEO)");
  }
}

void TcpStream::shutdown_rw() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(const std::string& host, std::uint16_t port) {
  fd_ = new_tcp_fd();
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    raise_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    raise_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    raise_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<TcpStream> TcpListener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpStream(fd);
    }
    if (errno == EINTR) continue;
    // close() shut the listener down (EINVAL on Linux), or the fd is
    // otherwise done accepting: the accept loop should exit cleanly.
    return std::nullopt;
  }
}

void TcpListener::close() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace yf::dist
