// Wire protocol for the distributed parameter server (DESIGN.md §12).
//
// Every message on a master/worker connection is one length-prefixed
// binary frame: a fixed 40-byte header followed by `payload_len` payload
// bytes. The header is versioned and self-describing --
//
//   offset size field
//   0      4    magic          "YFWP" (0x59 0x46 0x57 0x50 on the wire)
//   4      2    version        protocol version, currently 1
//   6      2    op             Op enum below
//   8      4    shard          shard id (v1: must be 0, reserved for
//   12     8    shard version   per-shard ops; receivers reject nonzero)
//   20     8    payload_len    payload bytes following the header
//   28     8    checksum       FNV-1a 64 over the payload bytes
//   36     4    reserved       must be 0
//
// All multi-byte fields are little-endian, written explicitly byte by
// byte so the encoding is identical on any host. Doubles travel as their
// IEEE-754 bit pattern (std::bit_cast through uint64), so a value
// round-trips EXACTLY -- the one-worker socket trajectory is specified to
// be bit-identical to the in-process engine, which a textual or lossy
// encoding could not deliver.
//
// The framing layer is blocking-I/O over two single-method interfaces
// (ByteSource/ByteSink) and owns all partial-read handling: read_frame()
// loops a short-read source until the header / payload is complete, and
// distinguishes clean EOF at a frame boundary (returns false) from a torn
// frame mid-header or mid-payload (throws WireError). Malformed input --
// bad magic, unknown version or op, nonzero reserved fields, oversized
// payload, checksum mismatch -- throws WireError before any of it is
// interpreted; the fuzz loop in tests/dist_wire_test.cpp pins that no
// byte stream crashes the codec. Sockets implement the same interfaces
// (dist/socket.hpp), so the codec tests run over in-memory streams with
// no network at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace yf::dist {

/// Malformed or torn wire data. Connection-fatal: after a WireError the
/// stream position is unspecified and the connection must be closed.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 40;
/// Default payload-size bound: a frame carries at most one full arena of
/// doubles plus per-shard bookkeeping; 64 MiB covers ~8M parameters.
inline constexpr std::size_t kDefaultMaxPayload = 64u << 20;

/// Frame operations. Requests (worker -> master) are odd, their replies
/// even; kError may replace any reply.
enum class Op : std::uint16_t {
  kHello = 1,        ///< worker -> master: u64 worker id (0 = assign me one)
  kHelloAck = 2,     ///< master -> worker: u64 arena size, u64 shard count,
                     ///< u64 worker id, u64 last applied push seq
  kPull = 3,         ///< worker -> master: request parameters (empty)
  kPullReply = 4,    ///< master -> worker: u64 K, K x i64 versions, N x f64 values
  kPush = 5,         ///< worker -> master: u64 push seq (0 = unsequenced),
                     ///< u64 K, K x i64 versions, N x f64 grads
  kPushReply = 6,    ///< master -> worker: ApplyStats (see client.cpp)
  kShutdown = 7,     ///< worker -> master: no more requests (empty)
  kShutdownAck = 8,  ///< master -> worker: drained, closing (empty)
  kError = 9,        ///< either direction: utf-8 message; connection-fatal
};

/// True when `op` is one of the enumerators above (the codec rejects
/// anything else before the payload is read).
bool op_known(std::uint16_t op);
const char* op_name(Op op);

struct FrameHeader {
  std::uint16_t version = kWireVersion;
  Op op = Op::kError;
  std::uint32_t shard = 0;         ///< v1: always 0 (reserved, validated)
  std::uint64_t shard_version = 0; ///< v1: always 0 (reserved, validated)
  std::uint64_t payload_len = 0;
  std::uint64_t checksum = 0;      ///< FNV-1a 64 of the payload bytes
};

/// FNV-1a 64-bit over `data` -- the payload checksum. Not cryptographic;
/// it catches torn writes and framing bugs, not adversaries.
std::uint64_t fnv1a64(std::span<const std::byte> data);

// ---------------------------------------------------------------------------
// Blocking byte-stream interfaces. The framing layer is written against
// these; TcpStream (dist/socket.hpp) and the in-memory test streams both
// implement them.
// ---------------------------------------------------------------------------

class ByteSink {
 public:
  virtual ~ByteSink() = default;
  /// Write ALL of `data` (looping over partial writes) or throw.
  virtual void write_all(std::span<const std::byte> data) = 0;
};

class ByteSource {
 public:
  virtual ~ByteSource() = default;
  /// Blocking read of AT LEAST one byte into `dst`; returns the number
  /// read (possibly fewer than dst.size() -- a short read), or 0 at end
  /// of stream. The framing layer loops until a frame is complete.
  virtual std::size_t read_some(std::span<std::byte> dst) = 0;
};

/// Loop read_some until `dst` is full. Returns false if the stream ended
/// before the FIRST byte (clean EOF); throws WireError if it ends midway.
bool read_exact(ByteSource& src, std::span<std::byte> dst, const char* what);

// ---------------------------------------------------------------------------
// Frame encode/decode.
// ---------------------------------------------------------------------------

/// Serialize header + payload into `out` (appended; caller owns reuse).
/// The header's payload_len/checksum are computed from `payload`.
void encode_frame(std::vector<std::byte>& out, Op op, std::span<const std::byte> payload);

/// Encode and write one frame.
void write_frame(ByteSink& sink, Op op, std::span<const std::byte> payload,
                 std::vector<std::byte>& scratch);

/// Read one frame. Returns false on clean EOF at a frame boundary;
/// `payload` is resized to the frame's payload (capacity retained across
/// calls). Throws WireError on any malformed or torn input. Payloads
/// larger than `max_payload` are rejected from the header alone, before
/// any allocation.
bool read_frame(ByteSource& src, FrameHeader& header, std::vector<std::byte>& payload,
                std::size_t max_payload = kDefaultMaxPayload);

// ---------------------------------------------------------------------------
// Payload encoding: explicit little-endian primitives with bounds-checked
// reads. Doubles are bit-exact (IEEE-754 bits through uint64).
// ---------------------------------------------------------------------------

class PayloadWriter {
 public:
  /// Appends to `out`; the caller clears/reuses the buffer between frames.
  explicit PayloadWriter(std::vector<std::byte>& out) : out_(&out) {}

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);  ///< two's-complement through u64
  void f64(double v);        ///< exact: IEEE-754 bit pattern
  void f64_span(std::span<const double> v);
  void i64_span(std::span<const std::int64_t> v);
  void str(std::string_view s);  ///< u32 length + bytes

 private:
  std::vector<std::byte>* out_;
};

class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  void f64_span(std::span<double> dst);
  void i64_span(std::span<std::int64_t> dst);
  std::string str(std::size_t max_len = 1u << 16);

  std::size_t remaining() const { return data_.size() - pos_; }
  /// Throws WireError if payload bytes remain unconsumed -- a frame must
  /// be read completely so version-1 peers notice trailing garbage.
  void expect_end() const;

 private:
  std::span<const std::byte> take(std::size_t n, const char* what);

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace yf::dist
