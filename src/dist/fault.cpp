#include "dist/fault.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string_view>
#include <thread>

#include "core/env.hpp"

namespace yf::dist {

namespace {

// splitmix64 (Steele et al.): tiny, seedable, and statistically fine for
// picking which frame to hurt. Not the tensor RNG on purpose -- fault
// schedules must not perturb model initialization streams.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double to_unit(std::uint64_t r) { return static_cast<double>(r >> 11) * 0x1.0p-53; }

std::string_view trimmed(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

[[noreturn]] void bad_token(std::string_view tok, const char* why) {
  throw std::invalid_argument("fault plan: " + std::string(why) + " in \"" + std::string(tok) +
                              "\"");
}

double parse_prob(std::string_view v, std::string_view tok) {
  double p = 0.0;
  const auto res = std::from_chars(v.data(), v.data() + v.size(), p);
  if (res.ec != std::errc() || res.ptr != v.data() + v.size() || !(p >= 0.0) || p > 1.0) {
    bad_token(tok, "probability must be in [0, 1]");
  }
  return p;
}

std::uint64_t parse_u64(std::string_view v, std::string_view tok) {
  std::uint64_t n = 0;
  const auto res = std::from_chars(v.data(), v.data() + v.size(), n);
  if (res.ec != std::errc() || res.ptr != v.data() + v.size()) {
    bad_token(tok, "expected an unsigned integer");
  }
  return n;
}

std::int64_t parse_ms(std::string_view v, std::string_view tok) {
  std::int64_t ms = 0;
  const auto res = std::from_chars(v.data(), v.data() + v.size(), ms);
  if (res.ec != std::errc() || res.ptr != v.data() + v.size() || ms < 0) {
    bad_token(tok, "expected a non-negative millisecond count");
  }
  return ms;
}

FaultKind kind_from_name(std::string_view name, std::string_view tok) {
  if (name == "drop") return FaultKind::kDrop;
  if (name == "trunc") return FaultKind::kTruncate;
  if (name == "corrupt") return FaultKind::kCorrupt;
  if (name == "delay") return FaultKind::kDelay;
  bad_token(tok, "unknown fault kind");
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kTruncate: return "trunc";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDelay: return "delay";
  }
  return "unknown";
}

bool FaultPlan::active() const {
  return drop > 0.0 || truncate > 0.0 || corrupt > 0.0 || delay > 0.0 || !directives.empty();
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::size_t pos = 0;
  bool any = false;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    const std::string_view tok = trimmed(std::string_view(text).substr(pos, end - pos));
    pos = end + 1;
    if (tok.empty()) continue;
    any = true;

    const std::size_t at = tok.find('@');
    const std::size_t eq = tok.find('=');
    if (at != std::string_view::npos && (eq == std::string_view::npos || at < eq)) {
      // Exact-frame directive: kind@N, delay also accepting @N:MS.
      Directive dir;
      dir.kind = kind_from_name(tok.substr(0, at), tok);
      std::string_view rest = tok.substr(at + 1);
      if (dir.kind == FaultKind::kDelay) {
        const std::size_t colon = rest.find(':');
        if (colon != std::string_view::npos) {
          dir.delay_ms = parse_ms(rest.substr(colon + 1), tok);
          rest = rest.substr(0, colon);
        }
      }
      dir.frame = parse_u64(rest, tok);
      plan.directives.push_back(dir);
    } else if (eq != std::string_view::npos) {
      const std::string_view key = tok.substr(0, eq);
      std::string_view val = tok.substr(eq + 1);
      if (key == "seed") {
        plan.seed = parse_u64(val, tok);
      } else if (key == "drop") {
        plan.drop = parse_prob(val, tok);
      } else if (key == "trunc") {
        plan.truncate = parse_prob(val, tok);
      } else if (key == "corrupt") {
        plan.corrupt = parse_prob(val, tok);
      } else if (key == "delay") {
        const std::size_t colon = val.find(':');
        if (colon != std::string_view::npos) {
          plan.delay_ms = parse_ms(val.substr(colon + 1), tok);
          val = val.substr(0, colon);
        }
        plan.delay = parse_prob(val, tok);
      } else {
        bad_token(tok, "unknown key");
      }
    } else {
      bad_token(tok, "expected key=value or kind@frame");
    }
  }
  if (!any) throw std::invalid_argument("fault plan: empty specification");
  if (plan.drop + plan.truncate + plan.corrupt + plan.delay > 1.0) {
    throw std::invalid_argument("fault plan: probabilities sum past 1");
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const std::string text = core::env_str("YF_FAULT_PLAN", "");
  if (text.empty()) return {};
  try {
    return parse(text);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "yf: YF_FAULT_PLAN=\"%s\" is malformed (%s); injecting no faults\n",
                 text.c_str(), e.what());
    return {};
  }
}

FaultInjector::Decision FaultInjector::next() {
  std::scoped_lock lock(mu_);
  const std::uint64_t idx = frame_++;
  if (!rng_seeded_) {
    rng_state_ = plan_.seed;
    rng_seeded_ = true;
  }
  // One draw per frame whether or not a directive overrides it, so adding
  // an exact directive never shifts which LATER frames the probabilistic
  // part selects -- plans stay composable.
  Decision d;
  d.rand = splitmix64(rng_state_);
  for (const FaultPlan::Directive& dir : plan_.directives) {
    if (dir.frame == idx && dir.kind != FaultKind::kNone) {
      d.kind = dir.kind;
      d.delay_ms = dir.delay_ms;
      ++fired_;
      return d;
    }
  }
  const double u = to_unit(d.rand);
  double acc = plan_.drop;
  if (u < acc) {
    d.kind = FaultKind::kDrop;
  } else if (u < (acc += plan_.truncate)) {
    d.kind = FaultKind::kTruncate;
  } else if (u < (acc += plan_.corrupt)) {
    d.kind = FaultKind::kCorrupt;
  } else if (u < (acc += plan_.delay)) {
    d.kind = FaultKind::kDelay;
    d.delay_ms = plan_.delay_ms;
  }
  if (d.kind != FaultKind::kNone) ++fired_;
  return d;
}

std::uint64_t FaultInjector::frames_seen() const {
  std::scoped_lock lock(mu_);
  return frame_;
}

std::uint64_t FaultInjector::faults_fired() const {
  std::scoped_lock lock(mu_);
  return fired_;
}

void FaultyStream::write_all(std::span<const std::byte> data) {
  if (poisoned_) {
    throw FaultInjected("fault injection: stream poisoned by an earlier truncated frame");
  }
  const FaultInjector::Decision d = injector_->next();
  switch (d.kind) {
    case FaultKind::kNone:
      sink_->write_all(data);
      return;
    case FaultKind::kDrop:
      // The frame never leaves this host; the peer just waits (and times
      // out, with deadlines armed).
      return;
    case FaultKind::kTruncate: {
      // A strict prefix, then poison: the peer sees the stream die
      // mid-frame (a torn frame) once the connection closes.
      const std::size_t keep = data.empty() ? 0 : static_cast<std::size_t>(d.rand % data.size());
      if (keep > 0) sink_->write_all(data.first(keep));
      poisoned_ = true;
      throw FaultInjected("fault injection: frame truncated after " + std::to_string(keep) +
                          " of " + std::to_string(data.size()) + " bytes");
    }
    case FaultKind::kCorrupt: {
      // One byte flipped in a scratch copy, past the 4-byte magic when the
      // frame allows it, so the damage lands in a validated header field
      // or the checksummed payload instead of reading as a non-YF peer.
      scratch_.assign(data.begin(), data.end());
      if (scratch_.empty()) return;
      const std::size_t lo = scratch_.size() > 4 ? 4 : 0;
      const std::size_t at = lo + static_cast<std::size_t>(d.rand % (scratch_.size() - lo));
      scratch_[at] ^= std::byte{0x5a};
      sink_->write_all(scratch_);
      return;
    }
    case FaultKind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(d.delay_ms));
      sink_->write_all(data);
      return;
  }
}

}  // namespace yf::dist
