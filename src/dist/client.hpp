// RemoteParamClient: a worker's ParamChannel over TCP connections to a
// MasterServer (DESIGN.md §12, fault tolerance §14).
//
// The constructor connects and runs the kHello handshake, learning the
// master's arena size and shard count plus this worker's id; after that,
// pull() and push() are one request/reply frame round trip each, on the
// calling thread, with all buffers reused so the steady state allocates
// nothing.
//
// Transport failures are RETRIED, not fatal: any WireError or
// SocketError (torn frame, timeout, refused/looped connection, injected
// fault) tears the connection down, backs off exponentially, reconnects,
// re-runs kHello with the remembered worker id, and replays the staged
// request bytes -- up to max_attempts, after which the last error
// propagates. Pulls are idempotent; pushes are made exactly-once by a
// per-worker sequence number the master dedups against its PushLedger,
// so a replayed push whose first copy WAS applied returns the original
// ApplyStats instead of double-applying. The staged request bytes are
// identical across retries (the seq is assigned once, at push()).
//
// What is NOT retried: a master whose geometry changed across a
// reconnect (plain std::runtime_error -- the trajectory is gone, retry
// cannot help) and std::logic_error misuse.
//
// Single-owner like every ParamChannel: one worker thread drives one
// client. shutdown() runs the kShutdown/kShutdownAck handshake (also
// through the retry loop) so the master can count a clean departure; the
// destructor calls it best-effort.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dist/channel.hpp"
#include "dist/fault.hpp"
#include "dist/socket.hpp"
#include "dist/wire.hpp"

namespace yf::dist {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  /// Refused-connection patience PER connect attempt (the master may
  /// still be binding, or be mid-restart).
  std::chrono::milliseconds connect_retry_for = std::chrono::milliseconds(5000);
  std::size_t max_payload = kDefaultMaxPayload;

  /// Socket read/write deadline in ms. 0 disables; -1 (default) means
  /// default_dist_timeout_ms(), i.e. YF_DIST_TIMEOUT_MS.
  std::int64_t timeout_ms = -1;

  /// Round-trip attempts before the last transport error propagates.
  std::int64_t max_attempts = 8;
  std::chrono::milliseconds backoff_base = std::chrono::milliseconds(10);
  std::chrono::milliseconds backoff_cap = std::chrono::milliseconds(500);

  /// Fault injector for this client's request frames. nullptr (default):
  /// use YF_FAULT_PLAN if it names an active plan, else no injection.
  /// Must outlive the client when set.
  FaultInjector* injector = nullptr;
};

class RemoteParamClient final : public ParamChannel {
 public:
  explicit RemoteParamClient(ClientOptions opts);

  /// Legacy convenience signature (positional host/port).
  RemoteParamClient(const std::string& host, std::uint16_t port,
                    std::chrono::milliseconds retry_for = std::chrono::milliseconds(5000),
                    std::size_t max_payload = kDefaultMaxPayload);
  ~RemoteParamClient() override;

  RemoteParamClient(const RemoteParamClient&) = delete;
  RemoteParamClient& operator=(const RemoteParamClient&) = delete;

  std::int64_t size() const override { return size_; }
  std::int64_t shard_count() const override { return shard_count_; }

  /// Master-assigned worker id (stable across reconnects; keys the
  /// master's exactly-once push ledger).
  std::uint64_t worker_id() const { return worker_id_; }

  /// Round trips that ended in a reconnect (telemetry for chaos tests).
  std::int64_t reconnects() const { return reconnects_; }

  void pull(std::span<double> dst, async::PullTicket& ticket) override;
  async::ApplyStats push(std::span<double> grad, const async::PullTicket& ticket) override;

  /// Clean-departure handshake: send kShutdown, wait for kShutdownAck,
  /// close. Idempotent; pull/push after shutdown() throw std::logic_error
  /// (same post-shutdown contract as the servers).
  void shutdown();
  bool stopped() const { return stopped_; }

 private:
  /// Connect + deadline + kHello, single attempt; throws WireError /
  /// SocketError into the retry loop on any transport trouble.
  void ensure_connected();
  void disconnect();

  /// One round trip of the staged request_ bytes, with the reconnect /
  /// backoff / replay loop described above.
  void round_trip(Op request_op, Op reply_op);

  /// Tear the connection down after a transport error; true when another
  /// attempt remains (after sleeping the backoff), false at the cap.
  bool retry_after(std::int64_t attempt);
  std::chrono::milliseconds backoff_delay(std::int64_t attempt) const;

  ByteSource& src() { return faulty_ ? static_cast<ByteSource&>(*faulty_) : stream_; }
  ByteSink& sink() { return faulty_ ? static_cast<ByteSink&>(*faulty_) : stream_; }

  ClientOptions opts_;
  std::int64_t timeout_ms_ = 0;
  std::optional<FaultInjector> env_injector_;  ///< owns the YF_FAULT_PLAN injector
  FaultInjector* injector_ = nullptr;          ///< the one actually in use (may be null)

  TcpStream stream_;
  std::optional<FaultyStream> faulty_;  ///< rebuilt per connection
  bool connected_ = false;

  std::int64_t size_ = 0;
  std::int64_t shard_count_ = 0;
  std::uint64_t worker_id_ = 0;   ///< 0 until the first hello_ack
  std::uint64_t push_seq_ = 0;    ///< last seq handed to push()
  std::int64_t reconnects_ = 0;
  bool stopped_ = false;

  std::vector<std::byte> request_;
  std::vector<std::byte> reply_;
  std::vector<std::byte> scratch_;
  std::vector<std::byte> hello_;  ///< hello staging, separate from request_
                                  ///< so a pending push survives reconnects
  FrameHeader header_;
};

}  // namespace yf::dist
