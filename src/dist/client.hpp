// RemoteParamClient: a worker's ParamChannel over one TCP connection to
// a MasterServer (DESIGN.md §12).
//
// The constructor connects and runs the kHello handshake, learning the
// master's arena size and shard count; after that, pull() and push() are
// one request/reply frame round trip each, on the calling thread, with
// all buffers reused so the steady state allocates nothing. An error
// frame from the master (or malformed data) throws; the connection is
// then dead and the client unusable.
//
// Single-owner like every ParamChannel: one worker thread drives one
// client. shutdown() runs the kShutdown/kShutdownAck handshake so the
// master can count a clean departure; the destructor calls it
// best-effort.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "dist/channel.hpp"
#include "dist/socket.hpp"
#include "dist/wire.hpp"

namespace yf::dist {

class RemoteParamClient final : public ParamChannel {
 public:
  /// Connect (retrying refused connections for `retry_for` -- the master
  /// may still be binding) and handshake.
  RemoteParamClient(const std::string& host, std::uint16_t port,
                    std::chrono::milliseconds retry_for = std::chrono::milliseconds(5000),
                    std::size_t max_payload = kDefaultMaxPayload);
  ~RemoteParamClient() override;

  RemoteParamClient(const RemoteParamClient&) = delete;
  RemoteParamClient& operator=(const RemoteParamClient&) = delete;

  std::int64_t size() const override { return size_; }
  std::int64_t shard_count() const override { return shard_count_; }

  void pull(std::span<double> dst, async::PullTicket& ticket) override;
  async::ApplyStats push(std::span<double> grad, const async::PullTicket& ticket) override;

  /// Clean-departure handshake: send kShutdown, wait for kShutdownAck,
  /// close. Idempotent; pull/push after shutdown() throw std::logic_error
  /// (same post-shutdown contract as the servers).
  void shutdown();
  bool stopped() const { return stopped_; }

 private:
  /// One round trip: write `request_op` with the bytes staged in
  /// request_, then read a frame and require `reply_op` (a kError frame
  /// raises its message instead).
  void round_trip(Op request_op, Op reply_op);

  TcpStream stream_;
  std::size_t max_payload_;
  std::int64_t size_ = 0;
  std::int64_t shard_count_ = 0;
  bool stopped_ = false;

  std::vector<std::byte> request_;
  std::vector<std::byte> reply_;
  std::vector<std::byte> scratch_;
  FrameHeader header_;
};

}  // namespace yf::dist
