#include "dist/master.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>
#include <vector>

namespace yf::dist {

MasterServer::MasterServer(async::ShardedParamServer& server, MasterOptions opts)
    : server_(server), opts_(std::move(opts)), listener_(opts_.host, opts_.port) {
  timeout_ms_ = opts_.timeout_ms >= 0 ? opts_.timeout_ms : default_dist_timeout_ms();
  if (!opts_.checkpoint_dir.empty()) {
    if (opts_.checkpoint_every < 1) {
      throw std::invalid_argument("MasterOptions: checkpoint_every must be >= 1");
    }
    checkpointer_.emplace(opts_.checkpoint_dir, opts_.checkpoint_keep);
    if (opts_.restore) {
      // Restore happens after bind but before the accept thread exists:
      // early reconnecting workers queue in the listen backlog and only
      // ever observe fully restored state.
      restored_index_ = restore_latest(opts_.checkpoint_dir, server_, ledger_);
    }
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

MasterServer::~MasterServer() { shutdown(); }

void MasterServer::accept_loop() {
  for (;;) {
    std::optional<TcpStream> stream = listener_.accept();
    if (!stream) return;  // listener closed: shutdown in progress
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;  // raced shutdown(); drop the late connection
    stats_.connections += 1;
    conns_.emplace_back();
    Conn& conn = conns_.back();
    conn.stream = std::move(*stream);
    conn.thread = std::thread([this, &conn] { serve_connection(conn.stream); });
  }
}

void MasterServer::serve_connection(TcpStream& stream) {
  const std::int64_t size = server_.size();
  const std::int64_t shard_count = server_.shard_count();
  // Deadline-bound every read and write on this connection: a worker that
  // dies mid-frame releases this thread with a SocketTimeout instead of
  // pinning it forever.
  if (timeout_ms_ > 0) stream.set_timeouts(timeout_ms_);
  // Test hook: fault the master's reply frames through the configured
  // injector. One FaultyStream per connection (poison state is per
  // stream); the injector itself spans connections.
  std::optional<FaultyStream> faulty;
  if (opts_.injector != nullptr) faulty.emplace(stream, stream, *opts_.injector);
  ByteSource& src = faulty ? static_cast<ByteSource&>(*faulty) : stream;
  ByteSink& sink = faulty ? static_cast<ByteSink&>(*faulty) : stream;
  // Per-connection scratch: steady-state dispatch reuses these buffers,
  // so serving a frame allocates nothing after the first round trip.
  std::vector<std::byte> payload;
  std::vector<std::byte> reply;
  std::vector<std::byte> scratch;
  std::vector<double> values(static_cast<std::size_t>(size));
  async::PullTicket ticket;
  FrameHeader header;
  std::uint64_t worker_id = 0;
  bool greeted = false;
  try {
    while (read_frame(src, header, payload, opts_.max_payload)) {
      PayloadReader in(payload);
      reply.clear();
      PayloadWriter out(reply);
      // v1 protocol rule: kHello opens every conversation, so both sides
      // agree on the arena geometry before any parameters move.
      if (!greeted && header.op != Op::kHello) {
        throw std::runtime_error(std::string(op_name(header.op)) + " before hello");
      }
      switch (header.op) {
        case Op::kHello: {
          const std::uint64_t requested = in.u64();
          in.expect_end();
          greeted = true;
          std::uint64_t last_seq = 0;
          {
            std::lock_guard<std::mutex> lock(mu_);
            if (requested == 0) {
              worker_id = ledger_.next_worker_id++;
            } else {
              // A reconnecting worker announces the id it was assigned
              // earlier; keep future assignments clear of it.
              worker_id = requested;
              if (requested >= ledger_.next_worker_id) {
                ledger_.next_worker_id = requested + 1;
              }
              const auto it = ledger_.entries.find(worker_id);
              if (it != ledger_.entries.end()) last_seq = it->second.last_seq;
            }
          }
          out.u64(static_cast<std::uint64_t>(size));
          out.u64(static_cast<std::uint64_t>(shard_count));
          out.u64(worker_id);
          out.u64(last_seq);
          write_frame(sink, Op::kHelloAck, reply, scratch);
          break;
        }
        case Op::kPull: {
          in.expect_end();
          server_.pull(values, ticket);
          out.u64(static_cast<std::uint64_t>(ticket.versions.size()));
          out.i64_span(ticket.versions);
          out.f64_span(values);
          write_frame(sink, Op::kPullReply, reply, scratch);
          std::lock_guard<std::mutex> lock(mu_);
          stats_.pulls += 1;
          break;
        }
        case Op::kPush: {
          const std::uint64_t seq = in.u64();
          const std::uint64_t k = in.u64();
          if (k != static_cast<std::uint64_t>(shard_count)) {
            throw std::runtime_error("push with " + std::to_string(k) +
                                     " shard versions, master has " +
                                     std::to_string(shard_count) + " shards");
          }
          ticket.versions.resize(static_cast<std::size_t>(k));
          in.i64_span(ticket.versions);
          in.f64_span(values);  // reuse the pull buffer as the grad buffer
          in.expect_end();
          async::ApplyStats stats;
          bool replay = false;
          if (seq != 0) {  // seq 0: an unsequenced push, no dedup contract
            std::lock_guard<std::mutex> lock(mu_);
            const auto it = ledger_.entries.find(worker_id);
            const std::uint64_t last = it == ledger_.entries.end() ? 0 : it->second.last_seq;
            if (seq == last) {
              // The worker resent a push whose reply it never saw: answer
              // from the ledger without re-applying (exactly-once).
              replay = true;
              stats = it->second.reply;
              stats_.retried_pushes += 1;
              stats_.deduped_pushes += 1;
            } else if (seq < last) {
              throw std::runtime_error("push seq " + std::to_string(seq) +
                                       " regressed behind " + std::to_string(last));
            }
          }
          if (!replay) {
            // Shared side of the checkpoint barrier across apply + record:
            // a snapshot can never hold an applied push without its dedup
            // entry, which keeps replay-after-restore exactly-once.
            std::shared_lock<std::shared_mutex> apply_lock(ckpt_mu_);
            stats = server_.push(values, ticket);
            std::lock_guard<std::mutex> lock(mu_);
            if (seq != 0) {
              PushLedger::Entry& entry = ledger_.entries[worker_id];
              entry.last_seq = seq;
              entry.reply = stats;
            }
            stats_.pushes += 1;
          }
          // Snapshot BEFORE the reply: with checkpoint_every=1, any reply
          // the worker acted on is a push a restarted master remembers.
          if (!replay && checkpointer_ &&
              stats.update_index % opts_.checkpoint_every == 0) {
            write_checkpoint(stats.update_index);
          }
          out.i64(stats.update_index);
          out.u8(stats.mu_hat_total.has_value() ? 1 : 0);
          out.f64(stats.mu_hat_total.value_or(0.0));
          out.f64(stats.applied_momentum);
          out.f64(stats.target_momentum);
          write_frame(sink, Op::kPushReply, reply, scratch);
          break;
        }
        case Op::kShutdown: {
          in.expect_end();
          write_frame(sink, Op::kShutdownAck, reply, scratch);
          stream.shutdown_rw();
          {
            std::lock_guard<std::mutex> lock(mu_);
            stats_.clean_shutdowns += 1;
          }
          done_cv_.notify_all();
          return;
        }
        default:
          // Known op, wrong direction (a reply sent as a request).
          throw std::runtime_error(std::string("unexpected ") + op_name(header.op));
      }
    }
    // Clean EOF without kShutdown: the worker vanished (crashed, or tore
    // down to reconnect). Its ledger entry stays warm for the replay.
    std::lock_guard<std::mutex> lock(mu_);
    stats_.disconnects += 1;
  } catch (const std::exception& e) {
    // One error frame, best-effort, then the connection is done. Wire
    // and socket errors mean the stream itself is broken, so the frame
    // may not arrive -- that is fine, the close carries the message.
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.errors += 1;
    }
    try {
      reply.clear();
      PayloadWriter out(reply);
      out.str(e.what());
      write_frame(sink, Op::kError, reply, scratch);
    } catch (...) {
    }
    stream.shutdown_rw();
  }
}

void MasterServer::write_checkpoint(std::int64_t index) {
  // Exclusive side of the barrier: every in-flight apply+record pair has
  // finished, none can start. mu_ nests inside (lock order ckpt_mu_, mu_)
  // to freeze the ledger for serialization.
  std::unique_lock<std::shared_mutex> freeze(ckpt_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  try {
    checkpointer_->write(server_, ledger_, index);
    stats_.checkpoints += 1;
  } catch (const CheckpointError& e) {
    // A missed snapshot only widens the restore window -- the PREVIOUS
    // snapshot's ledger still dedups any replay -- so serving continues.
    std::fprintf(stderr, "yf: checkpoint %lld failed: %s\n",
                 static_cast<long long>(index), e.what());
  }
}

bool MasterServer::wait_for_clients(std::int64_t n, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stopped_) throw std::logic_error("MasterServer::wait_for_clients after shutdown");
  return done_cv_.wait_for(lock, timeout,
                           [this, n] { return stats_.clean_shutdowns >= n; });
}

void MasterServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Another caller is (or was) draining; nothing to do beyond letting
      // the first shutdown() finish -- the destructor path handles joins.
      return;
    }
    stopping_ = true;
  }
  // 1. Close intake: no new connections, no new frames. A frame already
  //    inside dispatch completes and its reply is written (drain).
  listener_.close();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Conn& conn : conns_) conn.stream.shutdown_rw();
  }
  // 2. Drain + join. The conns_ list is append-only and service threads
  //    never erase entries, so iterating outside the lock is safe once
  //    stopping_ stops the accept loop from appending.
  if (accept_thread_.joinable()) accept_thread_.join();
  for (Conn& conn : conns_) {
    if (conn.thread.joinable()) conn.thread.join();
  }
  // 3. Only now is the object quiescent.
  std::lock_guard<std::mutex> lock(mu_);
  stopped_ = true;
}

bool MasterServer::stopped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stopped_;
}

MasterServer::Stats MasterServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace yf::dist
