#include "dist/master.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

namespace yf::dist {

MasterServer::MasterServer(async::ShardedParamServer& server, MasterOptions opts)
    : server_(server), opts_(std::move(opts)), listener_(opts_.host, opts_.port) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

MasterServer::~MasterServer() { shutdown(); }

void MasterServer::accept_loop() {
  for (;;) {
    std::optional<TcpStream> stream = listener_.accept();
    if (!stream) return;  // listener closed: shutdown in progress
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;  // raced shutdown(); drop the late connection
    stats_.connections += 1;
    conns_.emplace_back();
    Conn& conn = conns_.back();
    conn.stream = std::move(*stream);
    conn.thread = std::thread([this, &conn] { serve_connection(conn.stream); });
  }
}

void MasterServer::serve_connection(TcpStream& stream) {
  const std::int64_t size = server_.size();
  const std::int64_t shard_count = server_.shard_count();
  // Per-connection scratch: steady-state dispatch reuses these buffers,
  // so serving a frame allocates nothing after the first round trip.
  std::vector<std::byte> payload;
  std::vector<std::byte> reply;
  std::vector<std::byte> scratch;
  std::vector<double> values(static_cast<std::size_t>(size));
  async::PullTicket ticket;
  FrameHeader header;
  bool greeted = false;
  try {
    while (read_frame(stream, header, payload, opts_.max_payload)) {
      PayloadReader in(payload);
      reply.clear();
      PayloadWriter out(reply);
      // v1 protocol rule: kHello opens every conversation, so both sides
      // agree on the arena geometry before any parameters move.
      if (!greeted && header.op != Op::kHello) {
        throw std::runtime_error(std::string(op_name(header.op)) + " before hello");
      }
      switch (header.op) {
        case Op::kHello: {
          in.expect_end();
          greeted = true;
          out.u64(static_cast<std::uint64_t>(size));
          out.u64(static_cast<std::uint64_t>(shard_count));
          write_frame(stream, Op::kHelloAck, reply, scratch);
          break;
        }
        case Op::kPull: {
          in.expect_end();
          server_.pull(values, ticket);
          out.u64(static_cast<std::uint64_t>(ticket.versions.size()));
          out.i64_span(ticket.versions);
          out.f64_span(values);
          write_frame(stream, Op::kPullReply, reply, scratch);
          std::lock_guard<std::mutex> lock(mu_);
          stats_.pulls += 1;
          break;
        }
        case Op::kPush: {
          const std::uint64_t k = in.u64();
          if (k != static_cast<std::uint64_t>(shard_count)) {
            throw std::runtime_error("push with " + std::to_string(k) + " shard versions, master has " +
                                     std::to_string(shard_count) + " shards");
          }
          ticket.versions.resize(static_cast<std::size_t>(k));
          in.i64_span(ticket.versions);
          in.f64_span(values);  // reuse the pull buffer as the grad buffer
          in.expect_end();
          const async::ApplyStats stats = server_.push(values, ticket);
          out.i64(stats.update_index);
          out.u8(stats.mu_hat_total.has_value() ? 1 : 0);
          out.f64(stats.mu_hat_total.value_or(0.0));
          out.f64(stats.applied_momentum);
          out.f64(stats.target_momentum);
          write_frame(stream, Op::kPushReply, reply, scratch);
          std::lock_guard<std::mutex> lock(mu_);
          stats_.pushes += 1;
          break;
        }
        case Op::kShutdown: {
          in.expect_end();
          write_frame(stream, Op::kShutdownAck, reply, scratch);
          stream.shutdown_rw();
          {
            std::lock_guard<std::mutex> lock(mu_);
            stats_.clean_shutdowns += 1;
          }
          done_cv_.notify_all();
          return;
        }
        default:
          // Known op, wrong direction (a reply sent as a request).
          throw std::runtime_error(std::string("unexpected ") + op_name(header.op));
      }
    }
    // Clean EOF without kShutdown: the worker vanished. Nothing to reply
    // to; the connection just winds down.
  } catch (const std::exception& e) {
    // One error frame, best-effort, then the connection is done. Wire
    // and socket errors mean the stream itself is broken, so the frame
    // may not arrive -- that is fine, the close carries the message.
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.errors += 1;
    }
    try {
      reply.clear();
      PayloadWriter out(reply);
      out.str(e.what());
      write_frame(stream, Op::kError, reply, scratch);
    } catch (...) {
    }
    stream.shutdown_rw();
  }
}

bool MasterServer::wait_for_clients(std::int64_t n, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stopped_) throw std::logic_error("MasterServer::wait_for_clients after shutdown");
  return done_cv_.wait_for(lock, timeout,
                           [this, n] { return stats_.clean_shutdowns >= n; });
}

void MasterServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Another caller is (or was) draining; nothing to do beyond letting
      // the first shutdown() finish -- the destructor path handles joins.
      return;
    }
    stopping_ = true;
  }
  // 1. Close intake: no new connections, no new frames. A frame already
  //    inside dispatch completes and its reply is written (drain).
  listener_.close();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Conn& conn : conns_) conn.stream.shutdown_rw();
  }
  // 2. Drain + join. The conns_ list is append-only and service threads
  //    never erase entries, so iterating outside the lock is safe once
  //    stopping_ stops the accept loop from appending.
  if (accept_thread_.joinable()) accept_thread_.join();
  for (Conn& conn : conns_) {
    if (conn.thread.joinable()) conn.thread.join();
  }
  // 3. Only now is the object quiescent.
  std::lock_guard<std::mutex> lock(mu_);
  stopped_ = true;
}

bool MasterServer::stopped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stopped_;
}

MasterServer::Stats MasterServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace yf::dist
