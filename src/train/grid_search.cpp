#include "train/grid_search.hpp"

#include <limits>
#include <stdexcept>

#include "train/metrics.hpp"

namespace yf::train {

GridSearchResult grid_search(const RunFn& run, const GridSearchOptions& opts) {
  if (opts.grid.empty() || opts.seeds.empty()) {
    throw std::invalid_argument("grid_search: empty grid or seed list");
  }
  GridSearchResult result;
  result.best_loss = std::numeric_limits<double>::infinity();
  for (double hyper : opts.grid) {
    std::vector<std::vector<double>> curves;
    curves.reserve(opts.seeds.size());
    for (auto seed : opts.seeds) curves.push_back(run(hyper, seed));
    const auto avg = average_curves(curves);
    const auto smoothed = smooth_uniform(avg, opts.smooth_window);
    const double score = curve_min(smoothed);
    result.scores.emplace_back(hyper, score);
    if (score < result.best_loss) {
      result.best_loss = score;
      result.best_hyper = hyper;
      result.best_curve = smoothed;
    }
  }
  return result;
}

}  // namespace yf::train
