// Console/CSV reporting used by the bench harness to print the paper's
// tables and figure series.
#pragma once

#include <string>
#include <vector>

namespace yf::train {

/// Fixed-width console table. `rows` are row-major cells; the first row is
/// treated as the header.
void print_table(const std::string& title, const std::vector<std::vector<std::string>>& rows);

/// Print a figure series as "name: v0 v1 v2 ..." subsampled to at most
/// `max_points` evenly spaced points (so bench output stays readable).
void print_series(const std::string& name, const std::vector<double>& values,
                  std::size_t max_points = 16);

/// Write curves as CSV (one column per named curve) to `path`; curves may
/// have different lengths (shorter ones leave trailing cells empty).
void write_csv(const std::string& path, const std::vector<std::string>& names,
               const std::vector<std::vector<double>>& columns);

/// Format helpers.
std::string fmt(double v, int precision = 4);
std::string fmt_speedup(double ratio);  ///< "1.93x"

}  // namespace yf::train
