#include "train/reporting.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace yf::train {

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << std::defaultfloat << v;
  return os.str();
}

std::string fmt_speedup(double ratio) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << ratio << "x";
  return os.str();
}

void print_table(const std::string& title, const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return;
  std::vector<std::size_t> widths;
  for (const auto& row : rows) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::cout << "\n== " << title << " ==\n";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::cout << "  ";
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      std::cout << std::left << std::setw(static_cast<int>(widths[c]) + 2) << rows[r][c];
    }
    std::cout << "\n";
    if (r == 0) {
      std::cout << "  ";
      for (std::size_t c = 0; c < rows[r].size(); ++c) {
        std::cout << std::string(widths[c], '-') << "  ";
      }
      std::cout << "\n";
    }
  }
}

void print_series(const std::string& name, const std::vector<double>& values,
                  std::size_t max_points) {
  std::cout << "  " << name << ":";
  if (values.empty()) {
    std::cout << " (empty)\n";
    return;
  }
  const std::size_t n = values.size();
  const std::size_t points = std::min(max_points, n);
  for (std::size_t i = 0; i < points; ++i) {
    const std::size_t idx = points == 1 ? n - 1 : i * (n - 1) / (points - 1);
    std::cout << " " << fmt(values[idx], 4);
  }
  std::cout << "\n";
}

void write_csv(const std::string& path, const std::vector<std::string>& names,
               const std::vector<std::vector<double>>& columns) {
  if (names.size() != columns.size()) throw std::invalid_argument("write_csv: size mismatch");
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path);
  for (std::size_t c = 0; c < names.size(); ++c) {
    out << (c ? "," : "") << names[c];
  }
  out << "\n";
  std::size_t max_len = 0;
  for (const auto& col : columns) max_len = std::max(max_len, col.size());
  for (std::size_t r = 0; r < max_len; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c) out << ",";
      if (r < columns[c].size()) out << columns[c][r];
    }
    out << "\n";
  }
}

}  // namespace yf::train
