// Loss-curve metrics implementing the paper's Section 5.1 protocol:
//  * smooth training losses with a uniform (trailing) window;
//  * "record the lowest smoothed loss achieved by both; speedup is the
//    ratio of iterations to achieve this loss";
//  * validation metrics are reported as best-so-far (monotonic).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace yf::train {

/// Trailing uniform moving average with window `w` (paper uses 1000).
std::vector<double> smooth_uniform(const std::vector<double>& curve, std::int64_t w);

/// Monotone running minimum (for losses).
std::vector<double> running_min(const std::vector<double>& curve);
/// Monotone running maximum (for accuracy-like validation metrics).
std::vector<double> running_max(const std::vector<double>& curve);

/// First index where curve[i] <= target; nullopt if never reached.
std::optional<std::int64_t> iterations_to_reach(const std::vector<double>& curve, double target);

struct Speedup {
  double ratio = 0.0;             ///< iters(baseline) / iters(other); >1 means other wins
  double common_loss = 0.0;       ///< the lowest smoothed loss achieved by both
  std::int64_t baseline_iters = 0;
  std::int64_t other_iters = 0;
};

/// Section 5.1 speedup of `other` over `baseline` on smoothed loss curves.
Speedup speedup_over(const std::vector<double>& baseline_smoothed,
                     const std::vector<double>& other_smoothed);

/// Elementwise mean of equal-length curves (seed averaging).
std::vector<double> average_curves(const std::vector<std::vector<double>>& curves);

/// Minimum value of a curve.
double curve_min(const std::vector<double>& curve);

/// Normalized sample standard deviation (stddev / mean) of a set of final
/// metric values -- the stability statistic quoted in the paper's intro.
double normalized_std(const std::vector<double>& values);

}  // namespace yf::train
