// Synchronous training loop shared by tests, examples and benches.
#pragma once

#include <functional>
#include <optional>

#include "async/async_simulator.hpp"  // for GradFn
#include "async/param_server.hpp"
#include "autograd/tape.hpp"
#include "optim/lr_schedule.hpp"
#include "optim/optimizer.hpp"

namespace yf::train {

/// `GradFn` computes the minibatch loss at the current parameters and
/// leaves gradients on them (zero_grad is called by the loop).
using async::GradFn;

struct TrainOptions {
  std::int64_t iterations = 1000;
  /// Fixed-threshold gradient clipping (the manual baseline of Table 1);
  /// YellowFin's adaptive clipping is internal to the optimizer instead.
  std::optional<double> clip_norm;
  /// Epoch-indexed lr schedule: factor applied to `base_lr` each epoch.
  const optim::LrSchedule* schedule = nullptr;
  std::int64_t epoch_length = 0;  ///< iterations per epoch (0 = no epochs)
  double base_lr = 0.0;           ///< required when schedule != nullptr
  /// Optional validation probe, evaluated every `val_every` iterations.
  std::function<double()> val_fn;
  std::int64_t val_every = 0;
  /// Abort when loss is NaN/inf or exceeds this bound (divergence guard);
  /// remaining iterations are filled with the bound so curves stay rectangular.
  double divergence_bound = 1e9;
  /// Optional autograd tape owned by the caller for the whole run: the
  /// loop installs it on this thread and calls begin_step() before each
  /// grad_fn, so model steps reuse the cached graph (zero steady-state
  /// allocations, DESIGN.md §8). Null keeps the per-step heap graph.
  autograd::GraphTape* tape = nullptr;
};

struct TrainResult {
  std::vector<double> losses;               ///< per-iteration training loss
  std::vector<double> val_values;           ///< validation probe outputs
  std::vector<std::int64_t> val_iterations; ///< iterations they were taken at
  bool diverged = false;
};

TrainResult train(optim::Optimizer& optimizer, const GradFn& grad_fn, const TrainOptions& opts);

/// Asynchronous counterpart of train(): drive `server` with the given
/// worker replicas on the shared pool and shape the per-push losses (in
/// server apply order) into a TrainResult. Unlike train(), workers run to
/// completion; divergent losses are clamped to `divergence_bound` and
/// flagged rather than aborting the run.
TrainResult train_server(async::ShardedParamServer& server,
                         const std::vector<async::ServerWorker>& workers,
                         const async::ServerRunOptions& run_opts,
                         double divergence_bound = 1e9);

}  // namespace yf::train
