// Synchronous training loop shared by tests, examples and benches.
#pragma once

#include <functional>
#include <optional>

#include "async/async_simulator.hpp"  // for GradFn
#include "optim/lr_schedule.hpp"
#include "optim/optimizer.hpp"

namespace yf::train {

/// `GradFn` computes the minibatch loss at the current parameters and
/// leaves gradients on them (zero_grad is called by the loop).
using async::GradFn;

struct TrainOptions {
  std::int64_t iterations = 1000;
  /// Fixed-threshold gradient clipping (the manual baseline of Table 1);
  /// YellowFin's adaptive clipping is internal to the optimizer instead.
  std::optional<double> clip_norm;
  /// Epoch-indexed lr schedule: factor applied to `base_lr` each epoch.
  const optim::LrSchedule* schedule = nullptr;
  std::int64_t epoch_length = 0;  ///< iterations per epoch (0 = no epochs)
  double base_lr = 0.0;           ///< required when schedule != nullptr
  /// Optional validation probe, evaluated every `val_every` iterations.
  std::function<double()> val_fn;
  std::int64_t val_every = 0;
  /// Abort when loss is NaN/inf or exceeds this bound (divergence guard);
  /// remaining iterations are filled with the bound so curves stay rectangular.
  double divergence_bound = 1e9;
};

struct TrainResult {
  std::vector<double> losses;               ///< per-iteration training loss
  std::vector<double> val_values;           ///< validation probe outputs
  std::vector<std::int64_t> val_iterations; ///< iterations they were taken at
  bool diverged = false;
};

TrainResult train(optim::Optimizer& optimizer, const GradFn& grad_fn, const TrainOptions& opts);

}  // namespace yf::train
