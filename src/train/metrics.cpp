#include "train/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace yf::train {

std::vector<double> smooth_uniform(const std::vector<double>& curve, std::int64_t w) {
  if (w < 1) throw std::invalid_argument("smooth_uniform: window must be >= 1");
  std::vector<double> out(curve.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    acc += curve[i];
    if (i >= static_cast<std::size_t>(w)) acc -= curve[i - static_cast<std::size_t>(w)];
    const auto n = std::min<std::int64_t>(static_cast<std::int64_t>(i) + 1, w);
    out[i] = acc / static_cast<double>(n);
  }
  return out;
}

std::vector<double> running_min(const std::vector<double>& curve) {
  std::vector<double> out(curve.size());
  double m = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < curve.size(); ++i) {
    m = std::min(m, curve[i]);
    out[i] = m;
  }
  return out;
}

std::vector<double> running_max(const std::vector<double>& curve) {
  std::vector<double> out(curve.size());
  double m = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < curve.size(); ++i) {
    m = std::max(m, curve[i]);
    out[i] = m;
  }
  return out;
}

std::optional<std::int64_t> iterations_to_reach(const std::vector<double>& curve,
                                                double target) {
  for (std::size_t i = 0; i < curve.size(); ++i) {
    if (curve[i] <= target) return static_cast<std::int64_t>(i);
  }
  return std::nullopt;
}

Speedup speedup_over(const std::vector<double>& baseline_smoothed,
                     const std::vector<double>& other_smoothed) {
  if (baseline_smoothed.empty() || other_smoothed.empty()) {
    throw std::invalid_argument("speedup_over: empty curve");
  }
  Speedup s;
  s.common_loss = std::max(curve_min(baseline_smoothed), curve_min(other_smoothed));
  const auto bi = iterations_to_reach(baseline_smoothed, s.common_loss);
  const auto oi = iterations_to_reach(other_smoothed, s.common_loss);
  // By construction both curves reach common_loss; guard for NaN curves.
  if (!bi || !oi) throw std::runtime_error("speedup_over: curve never reaches common loss");
  s.baseline_iters = *bi;
  s.other_iters = *oi;
  s.ratio = s.other_iters > 0
                ? static_cast<double>(s.baseline_iters) / static_cast<double>(s.other_iters)
                : static_cast<double>(s.baseline_iters > 0 ? s.baseline_iters : 1);
  return s;
}

std::vector<double> average_curves(const std::vector<std::vector<double>>& curves) {
  if (curves.empty()) throw std::invalid_argument("average_curves: no curves");
  const auto n = curves.front().size();
  for (const auto& c : curves) {
    if (c.size() != n) throw std::invalid_argument("average_curves: length mismatch");
  }
  std::vector<double> out(n, 0.0);
  for (const auto& c : curves) {
    for (std::size_t i = 0; i < n; ++i) out[i] += c[i];
  }
  for (auto& v : out) v /= static_cast<double>(curves.size());
  return out;
}

double curve_min(const std::vector<double>& curve) {
  if (curve.empty()) throw std::invalid_argument("curve_min: empty curve");
  return *std::min_element(curve.begin(), curve.end());
}

double normalized_std(const std::vector<double>& values) {
  if (values.size() < 2) throw std::invalid_argument("normalized_std: need >= 2 values");
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size() - 1);
  return mean != 0.0 ? std::sqrt(var) / std::abs(mean) : 0.0;
}

}  // namespace yf::train
