#include "train/trainer.hpp"

#include <cmath>
#include <stdexcept>

#include "optim/clipping.hpp"

namespace yf::train {

TrainResult train(optim::Optimizer& optimizer, const GradFn& grad_fn, const TrainOptions& opts) {
  if (opts.schedule && (opts.epoch_length <= 0 || opts.base_lr <= 0.0)) {
    throw std::invalid_argument("train: schedule requires epoch_length and base_lr");
  }
  TrainResult result;
  result.losses.reserve(static_cast<std::size_t>(opts.iterations));
  auto& params = const_cast<std::vector<autograd::Variable>&>(optimizer.params());
  // The trainer owns the tape scope for the whole run: every grad_fn call
  // below records onto (and, after warm-up, replays) the caller's tape.
  autograd::TapeScope tape_scope(opts.tape);

  for (std::int64_t it = 0; it < opts.iterations; ++it) {
    if (result.diverged) {
      result.losses.push_back(opts.divergence_bound);
      continue;
    }
    if (opts.schedule) {
      const auto epoch = it / opts.epoch_length;
      optimizer.set_lr(opts.base_lr * opts.schedule->factor(epoch));
    }
    if (opts.tape) opts.tape->begin_step();
    optimizer.zero_grad();
    const double loss = grad_fn();
    if (!std::isfinite(loss) || loss > opts.divergence_bound) {
      result.diverged = true;
      result.losses.push_back(opts.divergence_bound);
      continue;
    }
    if (opts.clip_norm) optim::clip_grad_norm(params, *opts.clip_norm);
    optimizer.step();
    result.losses.push_back(loss);

    if (opts.val_fn && opts.val_every > 0 && (it + 1) % opts.val_every == 0) {
      result.val_values.push_back(opts.val_fn());
      result.val_iterations.push_back(it + 1);
    }
  }
  return result;
}

TrainResult train_server(async::ShardedParamServer& server,
                         const std::vector<async::ServerWorker>& workers,
                         const async::ServerRunOptions& run_opts, double divergence_bound) {
  const auto run = async::run_workers(server, workers, run_opts);
  TrainResult result;
  result.losses.reserve(run.losses.size());
  for (double loss : run.losses) {
    if (!std::isfinite(loss) || loss > divergence_bound) {
      result.diverged = true;
      loss = divergence_bound;
    }
    result.losses.push_back(loss);
  }
  return result;
}

}  // namespace yf::train
