// Learning-rate grid search with seed averaging (Section 5.1 protocol):
// "we tune Adam and momentum SGD on learning rate grids ... we pick the
// configuration achieving the lowest averaged smoothed loss".
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace yf::train {

/// Run one training job: build the model/task at `seed`, train with the
/// given hyperparameter (lr or lr factor), return the raw loss curve.
using RunFn = std::function<std::vector<double>(double hyper, std::uint64_t seed)>;

struct GridSearchOptions {
  std::vector<double> grid;
  std::vector<std::uint64_t> seeds = {1};
  std::int64_t smooth_window = 100;
};

struct GridSearchResult {
  double best_hyper = 0.0;
  std::vector<double> best_curve;                 ///< seed-averaged smoothed curve
  double best_loss = 0.0;                         ///< its minimum
  std::vector<std::pair<double, double>> scores;  ///< (hyper, min smoothed loss)
};

GridSearchResult grid_search(const RunFn& run, const GridSearchOptions& opts);

}  // namespace yf::train
