// yf::tensor -- minimal dense tensor used by the whole library.
//
// Design notes (cf. DESIGN.md §3):
//  * Row-major, contiguous, double precision. The paper's tuner is pure
//    scalar bookkeeping over gradients; double keeps the math exact enough
//    for finite-difference gradient checks.
//  * Storage is shared (`std::shared_ptr<std::vector<double>>`), so
//    `reshape` is O(1) and copies are explicit via `clone()`.
//  * The only view machinery is a contiguous offset window (`view_of`),
//    which is what lets core::ParamArena flatten every parameter into one
//    buffer while each parameter keeps an O(1)-reshape handle onto its
//    slice (DESIGN.md §4). Strided/sliced views still copy.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace yf::tensor {

/// Shape of a tensor: extent along each axis.
using Shape = std::vector<std::int64_t>;

/// Number of elements implied by a shape (product of extents; 1 for rank-0).
std::int64_t numel(const Shape& shape);

/// Human-readable "[2, 3, 4]" form, for error messages and logging.
std::string to_string(const Shape& shape);

/// Dense row-major tensor of doubles with shared storage.
class Tensor {
 public:
  /// Empty tensor: rank 1, zero elements.
  Tensor();

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor wrapping the given flat data; `data.size()` must equal
  /// `numel(shape)`.
  Tensor(Shape shape, std::vector<double> data);

  /// Rank-0-like convenience: a 1-element tensor holding `value`.
  static Tensor scalar(double value);

  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, double value);

  /// [0, 1, ..., n-1] as a rank-1 tensor.
  static Tensor arange(std::int64_t n);

  /// Contiguous window into `base`'s *shared storage*, starting `offset`
  /// elements after `base`'s own start. Writes through either handle are
  /// visible in both. Note the bound is the storage, not `base`'s extent:
  /// a view of an arena slot may legitimately widen back out to the whole
  /// arena buffer (see core::ParamArena adoption).
  static Tensor view_of(const Tensor& base, std::int64_t offset, Shape shape);

  /// Deep copy (fresh storage).
  Tensor clone() const;

  const Shape& shape() const { return shape_; }
  std::int64_t ndim() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t size() const { return size_; }
  /// Extent along axis `i` (supports negative axes Python-style).
  std::int64_t dim(std::int64_t i) const;

  std::span<double> data() {
    return {storage_->data() + offset_, static_cast<std::size_t>(size_)};
  }
  std::span<const double> data() const {
    return {storage_->data() + offset_, static_cast<std::size_t>(size_)};
  }

  /// Flat element access.
  double& operator[](std::int64_t i) {
    return (*storage_)[static_cast<std::size_t>(offset_ + i)];
  }
  double operator[](std::int64_t i) const {
    return (*storage_)[static_cast<std::size_t>(offset_ + i)];
  }

  /// Multi-index access; the index list length must equal ndim().
  double& at(std::initializer_list<std::int64_t> idx);
  double at(std::initializer_list<std::int64_t> idx) const;

  /// O(1) reshape sharing storage; total element count must be preserved.
  Tensor reshape(Shape new_shape) const;

  /// True when the two tensors share the same underlying storage (a view
  /// and its base buffer share storage even at different offsets).
  bool shares_storage_with(const Tensor& other) const {
    return storage_ == other.storage_;
  }

  /// Offset of this tensor's first element within the shared storage
  /// (non-zero only for view_of results).
  std::int64_t storage_offset() const { return offset_; }

  /// Value of a 1-element tensor; throws otherwise.
  double item() const;

  /// Set every element to `value`.
  void fill(double value);

  // -- In-place arithmetic used on hot paths (optimizer updates). ----------
  Tensor& add_(const Tensor& other, double scale = 1.0);  ///< this += scale*other
  Tensor& mul_(double s);                                 ///< this *= s
  Tensor& zero_();                                        ///< this = 0

 private:
  std::int64_t flat_index(std::initializer_list<std::int64_t> idx) const;

  Shape shape_;
  std::int64_t size_ = 0;
  std::int64_t offset_ = 0;  ///< first element within storage_ (views only)
  std::shared_ptr<std::vector<double>> storage_;
};

/// Throws std::invalid_argument unless the shapes match exactly.
void check_same_shape(const Tensor& a, const Tensor& b, const char* op);

}  // namespace yf::tensor
