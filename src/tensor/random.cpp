#include "tensor/random.hpp"

#include <stdexcept>

namespace yf::tensor {

Tensor Rng::normal_tensor(Shape shape, double mean, double stddev) {
  Tensor t(std::move(shape));
  for (auto& x : t.data()) x = normal(mean, stddev);
  return t;
}

Tensor Rng::uniform_tensor(Shape shape, double lo, double hi) {
  Tensor t(std::move(shape));
  for (auto& x : t.data()) x = uniform(lo, hi);
  return t;
}

std::int64_t Rng::categorical(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("categorical: weights sum to zero");
  double u = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return static_cast<std::int64_t>(i);
  }
  return static_cast<std::int64_t>(weights.size()) - 1;
}

}  // namespace yf::tensor
