#include "tensor/tensor.hpp"

#include <numeric>
#include <sstream>
#include <stdexcept>

#include "core/kernels.hpp"

namespace yf::tensor {

std::int64_t numel(const Shape& shape) {
  std::int64_t n = 1;
  for (auto d : shape) {
    if (d < 0) throw std::invalid_argument("negative extent in shape " + to_string(shape));
    n *= d;
  }
  return n;
}

std::string to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor() : Tensor(Shape{0}) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      size_(numel(shape_)),
      storage_(std::make_shared<std::vector<double>>(static_cast<std::size_t>(size_), 0.0)) {}

Tensor::Tensor(Shape shape, std::vector<double> data)
    : shape_(std::move(shape)),
      size_(numel(shape_)),
      storage_(std::make_shared<std::vector<double>>(std::move(data))) {
  if (static_cast<std::int64_t>(storage_->size()) != size_) {
    throw std::invalid_argument("Tensor: data size " + std::to_string(storage_->size()) +
                                " does not match shape " + to_string(shape_));
  }
}

Tensor Tensor::scalar(double value) { return Tensor(Shape{1}, {value}); }

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0); }

Tensor Tensor::full(Shape shape, double value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::arange(std::int64_t n) {
  Tensor t(Shape{n});
  for (std::int64_t i = 0; i < n; ++i) (*t.storage_)[static_cast<std::size_t>(i)] = static_cast<double>(i);
  return t;
}

Tensor Tensor::view_of(const Tensor& base, std::int64_t offset, Shape shape) {
  const auto n = numel(shape);
  const auto storage_size = static_cast<std::int64_t>(base.storage_->size());
  if (offset < 0 || base.offset_ + offset + n > storage_size) {
    throw std::invalid_argument("Tensor::view_of: window [" + std::to_string(offset) + ", " +
                                std::to_string(offset + n) + ") from base offset " +
                                std::to_string(base.offset_) + " exceeds shared storage of size " +
                                std::to_string(storage_size));
  }
  Tensor t = base;  // shares storage_
  t.shape_ = std::move(shape);
  t.size_ = n;
  t.offset_ = base.offset_ + offset;
  return t;
}

Tensor Tensor::clone() const {
  const auto s = data();
  return Tensor(shape_, std::vector<double>(s.begin(), s.end()));
}

std::int64_t Tensor::dim(std::int64_t i) const {
  const auto nd = ndim();
  if (i < 0) i += nd;
  if (i < 0 || i >= nd) {
    throw std::out_of_range("Tensor::dim: axis " + std::to_string(i) + " out of range for " +
                            to_string(shape_));
  }
  return shape_[static_cast<std::size_t>(i)];
}

std::int64_t Tensor::flat_index(std::initializer_list<std::int64_t> idx) const {
  if (static_cast<std::int64_t>(idx.size()) != ndim()) {
    throw std::invalid_argument("Tensor::at: expected " + std::to_string(ndim()) +
                                " indices, got " + std::to_string(idx.size()));
  }
  std::int64_t flat = 0;
  std::size_t axis = 0;
  for (auto i : idx) {
    const auto extent = shape_[axis];
    if (i < 0 || i >= extent) {
      throw std::out_of_range("Tensor::at: index " + std::to_string(i) + " out of range [0, " +
                              std::to_string(extent) + ") on axis " + std::to_string(axis));
    }
    flat = flat * extent + i;
    ++axis;
  }
  return flat;
}

double& Tensor::at(std::initializer_list<std::int64_t> idx) {
  return (*storage_)[static_cast<std::size_t>(offset_ + flat_index(idx))];
}

double Tensor::at(std::initializer_list<std::int64_t> idx) const {
  return (*storage_)[static_cast<std::size_t>(offset_ + flat_index(idx))];
}

Tensor Tensor::reshape(Shape new_shape) const {
  if (numel(new_shape) != size_) {
    throw std::invalid_argument("Tensor::reshape: cannot reshape " + to_string(shape_) + " to " +
                                to_string(new_shape));
  }
  Tensor t = *this;  // shares storage_
  t.shape_ = std::move(new_shape);
  return t;
}

double Tensor::item() const {
  if (size_ != 1) {
    throw std::invalid_argument("Tensor::item: tensor has " + std::to_string(size_) +
                                " elements, expected 1");
  }
  return (*storage_)[static_cast<std::size_t>(offset_)];
}

void Tensor::fill(double value) { core::fill(data(), value); }

Tensor& Tensor::add_(const Tensor& other, double scale) {
  check_same_shape(*this, other, "add_");
  core::axpy(data(), other.data(), scale);
  return *this;
}

Tensor& Tensor::mul_(double s) {
  core::scale(data(), s);
  return *this;
}

Tensor& Tensor::zero_() {
  core::fill(data(), 0.0);
  return *this;
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " + to_string(a.shape()) +
                                " vs " + to_string(b.shape()));
  }
}

}  // namespace yf::tensor
