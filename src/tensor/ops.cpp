#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/gemm.hpp"
#include "core/kernels.hpp"
#include "core/parallel.hpp"

namespace yf::tensor {
namespace {

void check_out_shape(const Tensor& out, const Shape& expected, const char* op) {
  if (out.shape() != expected) {
    throw std::invalid_argument(std::string(op) + ": output shape " + to_string(out.shape()) +
                                " does not match expected " + to_string(expected));
  }
}

template <typename F>
void zip_into(Tensor& out, const Tensor& a, const Tensor& b, const char* op, F&& f) {
  check_same_shape(a, b, op);
  check_out_shape(out, a.shape(), op);
  core::binary(out.data(), a.data(), b.data(), std::forward<F>(f));
}

template <typename F>
void unary_into(Tensor& out, const Tensor& a, const char* op, F&& f) {
  check_out_shape(out, a.shape(), op);
  core::map(out.data(), a.data(), std::forward<F>(f));
}

template <typename F>
Tensor zip(const Tensor& a, const Tensor& b, const char* op, F&& f) {
  check_same_shape(a, b, op);
  Tensor out(a.shape());
  core::binary(out.data(), a.data(), b.data(), std::forward<F>(f));
  return out;
}

template <typename F>
Tensor unary(const Tensor& a, F&& f) {
  Tensor out(a.shape());
  core::map(out.data(), a.data(), std::forward<F>(f));
  return out;
}

}  // namespace

void copy_into(Tensor& out, const Tensor& a) {
  if (out.size() != a.size()) {
    throw std::invalid_argument("copy_into: size mismatch " + to_string(out.shape()) + " vs " +
                                to_string(a.shape()));
  }
  core::copy(out.data(), a.data());
}

void add_into(Tensor& out, const Tensor& a, const Tensor& b) {
  zip_into(out, a, b, "add", [](double x, double y) { return x + y; });
}
void sub_into(Tensor& out, const Tensor& a, const Tensor& b) {
  zip_into(out, a, b, "sub", [](double x, double y) { return x - y; });
}
void mul_into(Tensor& out, const Tensor& a, const Tensor& b) {
  zip_into(out, a, b, "mul", [](double x, double y) { return x * y; });
}

void add_scalar_into(Tensor& out, const Tensor& a, double s) {
  unary_into(out, a, "add_scalar", [s](double x) { return x + s; });
}
void mul_scalar_into(Tensor& out, const Tensor& a, double s) {
  unary_into(out, a, "mul_scalar", [s](double x) { return x * s; });
}
void exp_into(Tensor& out, const Tensor& a) {
  unary_into(out, a, "exp", [](double x) { return std::exp(x); });
}
void log_into(Tensor& out, const Tensor& a) {
  unary_into(out, a, "log", [](double x) { return std::log(x); });
}
void square_into(Tensor& out, const Tensor& a) {
  unary_into(out, a, "square", [](double x) { return x * x; });
}
void tanh_into(Tensor& out, const Tensor& a) {
  unary_into(out, a, "tanh", [](double x) { return std::tanh(x); });
}
void sigmoid_into(Tensor& out, const Tensor& a) {
  unary_into(out, a, "sigmoid", [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
}
void relu_into(Tensor& out, const Tensor& a) {
  unary_into(out, a, "relu", [](double x) { return x > 0.0 ? x : 0.0; });
}

Tensor add(const Tensor& a, const Tensor& b) {
  return zip(a, b, "add", [](double x, double y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return zip(a, b, "sub", [](double x, double y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return zip(a, b, "mul", [](double x, double y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return zip(a, b, "div", [](double x, double y) { return x / y; });
}

Tensor add_scalar(const Tensor& a, double s) {
  return unary(a, [s](double x) { return x + s; });
}
Tensor mul_scalar(const Tensor& a, double s) {
  return unary(a, [s](double x) { return x * s; });
}

Tensor neg(const Tensor& a) {
  return unary(a, [](double x) { return -x; });
}
Tensor abs(const Tensor& a) {
  return unary(a, [](double x) { return std::abs(x); });
}
Tensor exp(const Tensor& a) {
  return unary(a, [](double x) { return std::exp(x); });
}
Tensor log(const Tensor& a) {
  return unary(a, [](double x) { return std::log(x); });
}
Tensor sqrt(const Tensor& a) {
  return unary(a, [](double x) { return std::sqrt(x); });
}
Tensor square(const Tensor& a) {
  return unary(a, [](double x) { return x * x; });
}
Tensor tanh(const Tensor& a) {
  return unary(a, [](double x) { return std::tanh(x); });
}
Tensor sigmoid(const Tensor& a) {
  return unary(a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
}
Tensor relu(const Tensor& a) {
  return unary(a, [](double x) { return x > 0.0 ? x : 0.0; });
}

Tensor map(const Tensor& a, const std::function<double(double)>& fn) {
  // std::function is too opaque to prove thread-safe; keep it sequential.
  Tensor out(a.shape());
  auto ia = a.data();
  auto oo = out.data();
  for (std::size_t i = 0; i < oo.size(); ++i) oo[i] = fn(ia[i]);
  return out;
}

double sum(const Tensor& a) { return core::sum(a.data()); }

double mean(const Tensor& a) {
  if (a.size() == 0) throw std::invalid_argument("mean: empty tensor");
  return sum(a) / static_cast<double>(a.size());
}

double max(const Tensor& a) {
  if (a.size() == 0) throw std::invalid_argument("max: empty tensor");
  double m = -std::numeric_limits<double>::infinity();
  for (double x : a.data()) m = std::max(m, x);
  return m;
}

double min(const Tensor& a) {
  if (a.size() == 0) throw std::invalid_argument("min: empty tensor");
  double m = std::numeric_limits<double>::infinity();
  for (double x : a.data()) m = std::min(m, x);
  return m;
}

double norm(const Tensor& a) { return std::sqrt(core::squared_norm(a.data())); }

double dot(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "dot");
  return core::dot(a.data(), b.data());
}

namespace {

/// Shared validation for the three matmul layouts. Extracts (m, n, k)
/// from the operand shapes given where each one keeps its k axis.
struct MatmulDims {
  std::int64_t m, n, k;
};

MatmulDims check_matmul(const Tensor& out, const Tensor& a, const Tensor& b,
                        core::GemmVariant v, const char* op) {
  if (a.ndim() != 2 || b.ndim() != 2) {
    throw std::invalid_argument(std::string(op) + ": expected 2-D tensors, got " +
                                to_string(a.shape()) + " and " + to_string(b.shape()));
  }
  MatmulDims d;
  d.m = v == core::GemmVariant::kTN ? a.dim(1) : a.dim(0);
  d.k = v == core::GemmVariant::kTN ? a.dim(0) : a.dim(1);
  d.n = v == core::GemmVariant::kNT ? b.dim(0) : b.dim(1);
  const auto bk = v == core::GemmVariant::kNT ? b.dim(1) : b.dim(0);
  if (d.k != bk) {
    throw std::invalid_argument(std::string(op) + ": inner dimension mismatch " +
                                to_string(a.shape()) + " vs " + to_string(b.shape()));
  }
  if (out.ndim() != 2 || out.dim(0) != d.m || out.dim(1) != d.n) {
    throw std::invalid_argument(std::string(op) + ": output shape " + to_string(out.shape()) +
                                " does not match [" + std::to_string(d.m) + ", " +
                                std::to_string(d.n) + "]");
  }
  return d;
}

void gemm_into(Tensor& out, const Tensor& a, const Tensor& b, core::GemmVariant v,
               const char* op) {
  const MatmulDims d = check_matmul(out, a, b, v, op);
  // The GEMM overwrites out (beta = 0 on the first k-panel), so no
  // zeroing pass: a dirty reused output is as good as a fresh one.
  core::gemm(v, out.data().data(), a.data().data(), b.data().data(), d.m, d.n, d.k);
}

}  // namespace

void matmul_into(Tensor& out, const Tensor& a, const Tensor& b) {
  gemm_into(out, a, b, core::GemmVariant::kNN, "matmul");
}

void matmul_nt_into(Tensor& out, const Tensor& a, const Tensor& b) {
  gemm_into(out, a, b, core::GemmVariant::kNT, "matmul_nt");
}

void matmul_tn_into(Tensor& out, const Tensor& a, const Tensor& b) {
  gemm_into(out, a, b, core::GemmVariant::kTN, "matmul_tn");
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.ndim() != 2 || b.ndim() != 2) {
    throw std::invalid_argument("matmul: expected 2-D tensors, got " + to_string(a.shape()) +
                                " and " + to_string(b.shape()));
  }
  Tensor c(Shape{a.dim(0), b.dim(1)});
  matmul_into(c, a, b);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  if (a.ndim() != 2 || b.ndim() != 2) {
    throw std::invalid_argument("matmul_nt: expected 2-D tensors, got " + to_string(a.shape()) +
                                " and " + to_string(b.shape()));
  }
  Tensor c(Shape{a.dim(0), b.dim(0)});
  matmul_nt_into(c, a, b);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  if (a.ndim() != 2 || b.ndim() != 2) {
    throw std::invalid_argument("matmul_tn: expected 2-D tensors, got " + to_string(a.shape()) +
                                " and " + to_string(b.shape()));
  }
  Tensor c(Shape{a.dim(1), b.dim(1)});
  matmul_tn_into(c, a, b);
  return c;
}

void transpose_into(Tensor& out, const Tensor& a) {
  if (a.ndim() != 2) {
    throw std::invalid_argument("transpose: expected 2-D tensor, got " + to_string(a.shape()));
  }
  const auto m = a.dim(0), n = a.dim(1);
  if (out.ndim() != 2 || out.dim(0) != n || out.dim(1) != m) {
    throw std::invalid_argument("transpose: output shape " + to_string(out.shape()) +
                                " does not match [" + std::to_string(n) + ", " +
                                std::to_string(m) + "]");
  }
  const auto* pa = a.data().data();
  auto* pt = out.data().data();
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) pt[j * m + i] = pa[i * n + j];
}

Tensor transpose(const Tensor& a) {
  if (a.ndim() != 2) {
    throw std::invalid_argument("transpose: expected 2-D tensor, got " + to_string(a.shape()));
  }
  Tensor t(Shape{a.dim(1), a.dim(0)});
  transpose_into(t, a);
  return t;
}

void add_row_broadcast_into(Tensor& out, const Tensor& a, const Tensor& bias) {
  if (a.ndim() != 2 || bias.ndim() != 1 || a.dim(1) != bias.dim(0)) {
    throw std::invalid_argument("add_row_broadcast: incompatible shapes " + to_string(a.shape()) +
                                " and " + to_string(bias.shape()));
  }
  check_out_shape(out, a.shape(), "add_row_broadcast");
  const auto m = a.dim(0), n = a.dim(1);
  const auto* pa = a.data().data();
  const auto* pb = bias.data().data();
  auto* po = out.data().data();
  // Parallel over rows: each chunk streams whole rows, so the inner loop
  // stays a plain add with no per-element index arithmetic.
  const std::int64_t row_grain =
      std::max<std::int64_t>(1, core::kDefaultGrain / std::max<std::int64_t>(1, n));
  core::parallel_for(m, row_grain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i)
      for (std::int64_t j = 0; j < n; ++j) po[i * n + j] = pa[i * n + j] + pb[j];
  });
}

Tensor add_row_broadcast(const Tensor& a, const Tensor& bias) {
  if (a.ndim() != 2) {
    throw std::invalid_argument("add_row_broadcast: incompatible shapes " + to_string(a.shape()) +
                                " and " + to_string(bias.shape()));
  }
  Tensor out(a.shape());
  add_row_broadcast_into(out, a, bias);
  return out;
}

void sum_rows_into(Tensor& out, const Tensor& a) {
  if (a.ndim() != 2) {
    throw std::invalid_argument("sum_rows: expected 2-D tensor, got " + to_string(a.shape()));
  }
  const auto m = a.dim(0), n = a.dim(1);
  if (out.ndim() != 1 || out.dim(0) != n) {
    throw std::invalid_argument("sum_rows: output shape " + to_string(out.shape()) +
                                " does not match [" + std::to_string(n) + "]");
  }
  const auto* pa = a.data().data();
  auto* po = out.data().data();
  core::fill(out.data(), 0.0);
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) po[j] += pa[i * n + j];
}

Tensor sum_rows(const Tensor& a) {
  if (a.ndim() != 2) {
    throw std::invalid_argument("sum_rows: expected 2-D tensor, got " + to_string(a.shape()));
  }
  Tensor out(Shape{a.dim(1)});
  sum_rows_into(out, a);
  return out;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "max_abs_diff");
  double m = 0.0;
  auto ia = a.data();
  auto ib = b.data();
  for (std::size_t i = 0; i < ia.size(); ++i) m = std::max(m, std::abs(ia[i] - ib[i]));
  return m;
}

bool allclose(const Tensor& a, const Tensor& b, double atol, double rtol) {
  if (a.shape() != b.shape()) return false;
  auto ia = a.data();
  auto ib = b.data();
  for (std::size_t i = 0; i < ia.size(); ++i) {
    if (std::abs(ia[i] - ib[i]) > atol + rtol * std::abs(ib[i])) return false;
  }
  return true;
}

}  // namespace yf::tensor
