// Seeded random number generation for reproducible experiments.
//
// Every experiment in the paper is averaged over >= 3 random seeds
// (Sec. 5); all stochasticity in this library flows through yf::tensor::Rng
// so a run is fully determined by its seed.
#pragma once

#include <cstdint>
#include <random>

#include "tensor/tensor.hpp"

namespace yf::tensor {

/// Thin, copyable wrapper over std::mt19937_64 with tensor-producing
/// convenience methods.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) : engine_(seed) {}

  /// Standard normal sample.
  double normal() { return normal_(engine_); }
  /// Normal with the given mean/stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal_(engine_); }
  /// Uniform in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return lo + (hi - lo) * unit_(engine_);
  }
  /// Uniform integer in [0, n).
  std::int64_t index(std::int64_t n) {
    return static_cast<std::int64_t>(engine_() % static_cast<std::uint64_t>(n));
  }
  /// Bernoulli(p).
  bool bernoulli(double p) { return unit_(engine_) < p; }

  Tensor normal_tensor(Shape shape, double mean = 0.0, double stddev = 1.0);
  Tensor uniform_tensor(Shape shape, double lo = 0.0, double hi = 1.0);

  /// Sample an index from an (unnormalized) non-negative weight vector.
  std::int64_t categorical(std::span<const double> weights);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<double> normal_{0.0, 1.0};
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace yf::tensor
