// Elementwise and linear-algebra operations on yf::tensor::Tensor.
//
// All functions are pure (return fresh tensors) unless suffixed `_into`.
// Every `_into` variant writes the result into a caller-owned tensor of
// the correct shape -- the autograd tape routes the model hot path
// through these so steady-state steps reuse workspace-backed outputs
// instead of allocating (DESIGN.md §8). The pure forms are implemented
// on top of the `_into` forms, so the two paths are bit-identical.
// Shapes are validated eagerly; mismatches throw std::invalid_argument.
#pragma once

#include <functional>

#include "tensor/tensor.hpp"

namespace yf::tensor {

// -- Elementwise binary (same shape). ---------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

// -- Scalar broadcast. -------------------------------------------------------
Tensor add_scalar(const Tensor& a, double s);
Tensor mul_scalar(const Tensor& a, double s);

// -- Elementwise unary. -------------------------------------------------------
Tensor neg(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor square(const Tensor& a);
Tensor tanh(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor relu(const Tensor& a);

/// Apply `fn` to every element.
Tensor map(const Tensor& a, const std::function<double(double)>& fn);

// -- Reductions (over all elements). -----------------------------------------
double sum(const Tensor& a);
double mean(const Tensor& a);
double max(const Tensor& a);
double min(const Tensor& a);
/// Euclidean norm of the flattened tensor.
double norm(const Tensor& a);
double dot(const Tensor& a, const Tensor& b);

// -- 2-D linear algebra. -------------------------------------------------------
// All three matmul layouts route through the packed GEMM subsystem
// (core/gemm.hpp): the NT/TN forms absorb the transpose in the packing
// step, so callers (autograd pullbacks, tied-embedding decode, conv)
// never materialize a transposed operand.
/// C[m,n] = A[m,k] @ B[k,n].
Tensor matmul(const Tensor& a, const Tensor& b);
/// C[m,n] = A[m,k] @ B[n,k]ᵀ.
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// C[m,n] = A[k,m]ᵀ @ B[k,n].
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// Transpose of a 2-D tensor.
Tensor transpose(const Tensor& a);
/// y[m,n] = A[m,n] + b[n] (bias broadcast over rows).
Tensor add_row_broadcast(const Tensor& a, const Tensor& bias);
/// Column-sums of a 2-D tensor -> rank-1 tensor of length n.
Tensor sum_rows(const Tensor& a);

// -- In-place variants writing into a preallocated output. --------------------
// `out` must already have the result shape. `out` may not alias inputs.
// The matmul variants *overwrite* `out` (beta = 0 inside the GEMM), so a
// dirty reused output needs no zeroing pass.
void copy_into(Tensor& out, const Tensor& a);  ///< out = a (shapes equal by size)
void add_into(Tensor& out, const Tensor& a, const Tensor& b);
void sub_into(Tensor& out, const Tensor& a, const Tensor& b);
void mul_into(Tensor& out, const Tensor& a, const Tensor& b);
void add_scalar_into(Tensor& out, const Tensor& a, double s);
void mul_scalar_into(Tensor& out, const Tensor& a, double s);
void exp_into(Tensor& out, const Tensor& a);
void log_into(Tensor& out, const Tensor& a);
void square_into(Tensor& out, const Tensor& a);
void tanh_into(Tensor& out, const Tensor& a);
void sigmoid_into(Tensor& out, const Tensor& a);
void relu_into(Tensor& out, const Tensor& a);
void matmul_into(Tensor& out, const Tensor& a, const Tensor& b);
void matmul_nt_into(Tensor& out, const Tensor& a, const Tensor& b);
void matmul_tn_into(Tensor& out, const Tensor& a, const Tensor& b);
void transpose_into(Tensor& out, const Tensor& a);
void add_row_broadcast_into(Tensor& out, const Tensor& a, const Tensor& bias);
void sum_rows_into(Tensor& out, const Tensor& a);

// -- Comparison helpers (used heavily by tests). ------------------------------
/// max_i |a_i - b_i|; shapes must match.
double max_abs_diff(const Tensor& a, const Tensor& b);
bool allclose(const Tensor& a, const Tensor& b, double atol = 1e-9, double rtol = 1e-7);

}  // namespace yf::tensor
