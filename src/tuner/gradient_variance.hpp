// GradientVariance (Algorithm 3).
//
// Tracks elementwise first and second moments of the gradient with
// zero-debiased EWMAs; the variance estimate is
//   C = 1^T (E[g^2] - E[g]^2) = sum_i Var(g_i),
// the total gradient variance over all coordinates (the `C` in Eq. 15).
//
// The two moment updates run as one fused kernel sweep over the raw
// gradient span (core::ewma_update_moments), so observing an arena
// gradient costs a single pass and zero temporaries. The variance
// readout (core::debiased_variance_sum) follows the canonical
// lane-blocked reduction order (DESIGN.md §4): its value is identical
// across kernel backends, machines, and worker counts, which is what
// lets scalar-vs-simd YellowFin trajectories pin bitwise.
#pragma once

#include <cstdint>
#include <span>

#include "core/state.hpp"
#include "tensor/tensor.hpp"

namespace yf::tuner {

class GradientVariance {
 public:
  explicit GradientVariance(double beta = 0.999) : beta_(beta) {}

  /// Observe a flattened gradient (zero-copy span form).
  void update(std::span<const double> grad);

  /// Observe a flattened gradient tensor.
  void update(const tensor::Tensor& grad) { update(std::span<const double>(grad.data())); }

  /// Current total-variance estimate; clamped at 0 (the EWMA difference can
  /// go slightly negative early on).
  double variance() const;

  bool initialized() const { return count_ > 0; }

  /// Serialize/restore the moment accumulators bit-exactly. The moment
  /// tensors are lazily sized from the first gradient, so the snapshot
  /// carries their length and load_state re-allocates to match.
  void save_state(core::StateWriter& w) const;
  void load_state(core::StateReader& r);

 private:
  double beta_;
  tensor::Tensor m1_raw_, m2_raw_;  ///< biased EWMA accumulators
  std::int64_t count_ = 0;
};

}  // namespace yf::tuner
