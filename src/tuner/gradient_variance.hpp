// GradientVariance (Algorithm 3).
//
// Tracks elementwise first and second moments of the gradient with
// zero-debiased EWMAs; the variance estimate is
//   C = 1^T (E[g^2] - E[g]^2) = sum_i Var(g_i),
// the total gradient variance over all coordinates (the `C` in Eq. 15).
#pragma once

#include "tuner/ewma.hpp"

namespace yf::tuner {

class GradientVariance {
 public:
  explicit GradientVariance(double beta = 0.999) : g_avg_(beta), g2_avg_(beta) {}

  /// Observe a flattened gradient.
  void update(const tensor::Tensor& grad);

  /// Current total-variance estimate; clamped at 0 (the EWMA difference can
  /// go slightly negative early on).
  double variance() const;

  bool initialized() const { return g_avg_.initialized(); }

 private:
  TensorEwma g_avg_, g2_avg_;
};

}  // namespace yf::tuner
