#include "tuner/yellowfin.hpp"

#include <cmath>

#include "core/kernels.hpp"

namespace yf::tuner {

YellowFin::YellowFin(std::vector<autograd::Variable> params, const YellowFinOptions& opts)
    : optim::Optimizer(std::move(params)),
      opts_(opts),
      curvature_(CurvatureRangeOptions{opts.beta, opts.window, /*log_smoothing=*/true,
                                       opts.adaptive_clipping ? 100.0 : 0.0}),
      variance_(opts.beta),
      distance_(opts.beta),
      mu_avg_(opts.beta),
      alpha_avg_(opts.beta),
      mu_(opts.mu0),
      alpha_(opts.lr0),
      target_mu_(opts.mu0),
      target_alpha_(opts.lr0) {
  velocity_ = arena_.make_buffer();
}

void YellowFin::measure(std::span<const double> flat_grad) {
  // Every measured statistic derives from kernel reductions in the
  // canonical lane-blocked order (DESIGN.md §4), so the lr/mu this tuner
  // produces -- and therefore the whole trajectory -- is bit-identical
  // across kernel backends and worker counts.
  const double sq = core::squared_norm(flat_grad);
  curvature_.update(sq);
  variance_.update(flat_grad);
  distance_.update(std::sqrt(sq));
}

optim::ApplyPlan YellowFin::begin_apply(std::span<double> grad) {
  // In the synchronous path `grad` is the arena gradient buffer itself:
  // measurements and clipping run on it directly, no per-step copy. At the
  // parameter server it is the pushing worker's own buffer, measured and
  // clipped before the per-shard copy into the arena.

  // -- Adaptive clipping (Appendix F): threshold sqrt(h_max). ---------------
  last_step_clipped_ = false;
  if (opts_.adaptive_clipping && curvature_.count() > 0) {
    last_clip_threshold_ = std::sqrt(curvature_.h_max());
    const double norm = core::clip_scale(grad, last_clip_threshold_);
    last_step_clipped_ = norm > last_clip_threshold_;
  }

  // -- Measurements (Algorithms 2-4), one fused pass each. ------------------
  measure(grad);

  // -- SingleStep closed form (Eq. 15). --------------------------------------
  const double hmax = curvature_.h_max();
  const double hmin = curvature_.h_min();
  if (hmin > 0.0) {
    const auto result = single_step(hmax, hmin, variance_.variance(), distance_.distance());
    target_mu_ = result.mu;
    target_alpha_ = result.alpha;
    if (opts_.smooth_hyperparams) {
      mu_ = mu_avg_.update(target_mu_);
      alpha_ = alpha_avg_.update(target_alpha_);
    } else {
      mu_ = target_mu_;
      alpha_ = target_alpha_;
    }
  }

  // -- Slow start (Appendix E) and the Fig. 11 manual factor. ----------------
  double lr = alpha_ * opts_.lr_factor;
  if (opts_.slow_start) {
    const double warmup = opts_.slow_start_iters > 0
                              ? static_cast<double>(opts_.slow_start_iters)
                              : 10.0 * static_cast<double>(opts_.window);
    const double t = static_cast<double>(iteration_ + 1);
    lr = std::min(lr, t * lr / warmup);
  }
  double mu = opts_.force_momentum.value_or(mu_);
  if (applied_mu_override_) mu = *applied_mu_override_;

  return {iteration_, lr, mu};
}

void YellowFin::save_state(core::StateWriter& w) const {
  Optimizer::save_state(w);
  w.f64(mu_);
  w.f64(alpha_);
  w.f64(target_mu_);
  w.f64(target_alpha_);
  w.f64(last_clip_threshold_);
  w.u8(last_step_clipped_ ? 1 : 0);
  w.u8(applied_mu_override_ ? 1 : 0);
  w.f64(applied_mu_override_.value_or(0.0));
  mu_avg_.save_state(w);
  alpha_avg_.save_state(w);
  curvature_.save_state(w);
  variance_.save_state(w);
  distance_.save_state(w);
  w.f64_span(velocity_.data());
}

void YellowFin::load_state(core::StateReader& r) {
  Optimizer::load_state(r);
  mu_ = r.f64();
  alpha_ = r.f64();
  target_mu_ = r.f64();
  target_alpha_ = r.f64();
  last_clip_threshold_ = r.f64();
  last_step_clipped_ = r.u8() != 0;
  const bool has_override = r.u8() != 0;
  const double override_mu = r.f64();
  applied_mu_override_ = has_override ? std::optional<double>(override_mu) : std::nullopt;
  mu_avg_.load_state(r);
  alpha_avg_.load_state(r);
  curvature_.load_state(r);
  variance_.load_state(r);
  distance_.load_state(r);
  r.f64_span(velocity_.data());
}

void YellowFin::step_span(const optim::ApplyPlan& plan, std::int64_t lo, std::int64_t hi) {
  // -- Momentum SGD update: one fused sweep over the span. -------------------
  const auto a = static_cast<std::size_t>(lo), n = static_cast<std::size_t>(hi - lo);
  core::momentum_step(arena_.values().subspan(a, n), velocity_.data().subspan(a, n),
                      arena_.grads().subspan(a, n), plan.lr, plan.mu, /*nesterov=*/false);
}

}  // namespace yf::tuner
