#include "tuner/yellowfin.hpp"

#include <cmath>

namespace yf::tuner {

YellowFin::YellowFin(std::vector<autograd::Variable> params, const YellowFinOptions& opts)
    : optim::Optimizer(std::move(params)),
      opts_(opts),
      curvature_(CurvatureRangeOptions{opts.beta, opts.window, /*log_smoothing=*/true,
                                       opts.adaptive_clipping ? 100.0 : 0.0}),
      variance_(opts.beta),
      distance_(opts.beta),
      mu_avg_(opts.beta),
      alpha_avg_(opts.beta),
      mu_(opts.mu0),
      alpha_(opts.lr0),
      target_mu_(opts.mu0),
      target_alpha_(opts.lr0) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.push_back(tensor::Tensor::zeros(p.value().shape()));
}

void YellowFin::measure(const tensor::Tensor& flat_grad) {
  double sq = 0.0;
  for (double g : flat_grad.data()) sq += g * g;
  curvature_.update(sq);
  variance_.update(flat_grad);
  distance_.update(std::sqrt(sq));
}

void YellowFin::step() {
  // Flatten the gradient once; all measurements run on this view.
  std::int64_t total = 0;
  for (const auto& p : params_) total += p.value().size();
  tensor::Tensor flat(tensor::Shape{total});
  std::int64_t off = 0;
  for (const auto& p : params_) {
    const auto& g = p.grad();
    for (std::int64_t i = 0; i < g.size(); ++i) flat[off + i] = g[i];
    off += g.size();
  }

  // -- Adaptive clipping (Appendix F): threshold sqrt(h_max). ---------------
  last_step_clipped_ = false;
  if (opts_.adaptive_clipping && curvature_.count() > 0) {
    last_clip_threshold_ = std::sqrt(curvature_.h_max());
    double norm_sq = 0.0;
    for (double g : flat.data()) norm_sq += g * g;
    const double norm = std::sqrt(norm_sq);
    if (norm > last_clip_threshold_ && norm > 0.0) {
      const double scale = last_clip_threshold_ / norm;
      flat.mul_(scale);
      // Also scale the gradients in place so the update below sees them.
      for (auto& p : params_) {
        auto g = p.node()->ensure_grad().data();
        for (auto& x : g) x *= scale;
      }
      last_step_clipped_ = true;
    }
  }

  // -- Measurements (Algorithms 2-4). ---------------------------------------
  measure(flat);

  // -- SingleStep closed form (Eq. 15). --------------------------------------
  const double hmax = curvature_.h_max();
  const double hmin = curvature_.h_min();
  if (hmin > 0.0) {
    const auto result = single_step(hmax, hmin, variance_.variance(), distance_.distance());
    target_mu_ = result.mu;
    target_alpha_ = result.alpha;
    if (opts_.smooth_hyperparams) {
      mu_ = mu_avg_.update(target_mu_);
      alpha_ = alpha_avg_.update(target_alpha_);
    } else {
      mu_ = target_mu_;
      alpha_ = target_alpha_;
    }
  }

  // -- Slow start (Appendix E) and the Fig. 11 manual factor. ----------------
  double lr = alpha_ * opts_.lr_factor;
  if (opts_.slow_start) {
    const double warmup = opts_.slow_start_iters > 0
                              ? static_cast<double>(opts_.slow_start_iters)
                              : 10.0 * static_cast<double>(opts_.window);
    const double t = static_cast<double>(iteration_ + 1);
    lr = std::min(lr, t * lr / warmup);
  }
  double mu = opts_.force_momentum.value_or(mu_);
  if (applied_mu_override_) mu = *applied_mu_override_;

  // -- Momentum SGD update. ----------------------------------------------------
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& v = velocity_[i];
    v.mul_(mu);
    v.add_(params_[i].grad(), -lr);
    params_[i].value().add_(v);
  }
  ++iteration_;
}

}  // namespace yf::tuner
