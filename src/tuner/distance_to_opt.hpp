// DistanceToOpt (Algorithm 4).
//
// Estimates D ~= ||x - x*|| of the local quadratic approximation from
// ||grad f(x)|| <= ||H|| ||x - x*||: running averages of the gradient norm
// and of the curvature h_t = ||g_t||^2 give D <- EWMA of ||g||_avg / h_avg.
#pragma once

#include "tuner/ewma.hpp"

namespace yf::tuner {

class DistanceToOpt {
 public:
  explicit DistanceToOpt(double beta = 0.999)
      : grad_norm_avg_(beta), curvature_avg_(beta), dist_avg_(beta) {}

  /// Observe the gradient norm ||g_t|| for this step.
  void update(double grad_norm);

  /// Current distance estimate D.
  double distance() const { return dist_avg_.value(); }

  /// Serialize/restore all three running averages bit-exactly.
  void save_state(core::StateWriter& w) const;
  void load_state(core::StateReader& r);

 private:
  Ewma grad_norm_avg_;  ///< running ||g||
  Ewma curvature_avg_;  ///< running h = ||g||^2
  Ewma dist_avg_;       ///< running ||g||_avg / h_avg
};

}  // namespace yf::tuner
