#include "tuner/single_step.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace yf::tuner {

double solve_cubic_sqrt_mu(double p) {
  if (!(p > 0.0)) throw std::invalid_argument("solve_cubic_sqrt_mu: p must be > 0");
  // Depressed cubic y^3 + p y + p = 0. Discriminant (p/2)^2 + (p/3)^3 > 0
  // for p > 0, so there is exactly one real root, given by Cardano:
  //   w^3 = -p/2 - sqrt(p^2/4 + p^3/27),  y = w - p / (3 w).
  const double w3 = (-std::sqrt(p * p + 4.0 / 27.0 * p * p * p) - p) / 2.0;
  const double w = std::copysign(std::pow(std::abs(w3), 1.0 / 3.0), w3);
  const double y = w - p / (3.0 * w);
  const double x = y + 1.0;
  // For p > 0 the real root satisfies y in (-1, 0), i.e. x in (0, 1);
  // clamp for numerical safety at the extremes.
  return std::clamp(x, 0.0, 1.0 - 1e-9);
}

SingleStepResult single_step(double h_max, double h_min, double c, double d) {
  if (!(h_min > 0.0) || !(h_max >= h_min)) {
    throw std::invalid_argument("single_step: need h_max >= h_min > 0");
  }
  if (c < 0.0 || d < 0.0) throw std::invalid_argument("single_step: C and D must be >= 0");

  SingleStepResult r;
  const double ratio = h_max / h_min;
  const double sqrt_ratio = std::sqrt(ratio);
  r.mu_lower_bound = ((sqrt_ratio - 1.0) / (sqrt_ratio + 1.0));
  r.mu_lower_bound *= r.mu_lower_bound;

  if (c <= 0.0 || d <= 0.0) {
    // Noiseless (or not-yet-measured) limit: the objective reduces to
    // mu D^2, minimized at the constraint boundary.
    r.mu_unconstrained = 0.0;
  } else {
    const double p = d * d * h_min * h_min / (2.0 * c);
    const double x = solve_cubic_sqrt_mu(p);
    r.mu_unconstrained = x * x;
  }
  r.mu = std::max(r.mu_unconstrained, r.mu_lower_bound);
  const double one_minus_sqrt_mu = 1.0 - std::sqrt(r.mu);
  r.alpha = one_minus_sqrt_mu * one_minus_sqrt_mu / h_min;
  return r;
}

}  // namespace yf::tuner
