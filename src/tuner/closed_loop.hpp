// Closed-loop momentum control (Section 4, Algorithm 5).
//
// Under asynchrony, the *total* momentum mu_T (algorithmic + asynchrony-
// induced, Mitliagkas et al. 2016) exceeds the algorithmic value. The
// controller adjusts the applied algorithmic momentum with a negative
// feedback loop so the measured total momentum tracks the tuner's target:
//
//   mu <- mu + gamma * (mu_target - mu_hat_T)
//
// The applied momentum may legitimately go negative (Fig. 4, right pane):
// with 16 workers the asynchrony-induced momentum alone can exceed the
// target.
#pragma once

#include <algorithm>

namespace yf::tuner {

class ClosedLoopController {
 public:
  explicit ClosedLoopController(double gamma = 0.01, double mu0 = 0.0)
      : gamma_(gamma), mu_(mu0) {}

  /// One feedback update; returns the new applied momentum.
  double update(double mu_target, double mu_hat_total) {
    mu_ += gamma_ * (mu_target - mu_hat_total);
    mu_ = std::clamp(mu_, -0.999, 0.999);
    return mu_;
  }

  double applied_momentum() const { return mu_; }
  double gamma() const { return gamma_; }

 private:
  double gamma_;
  double mu_;
};

}  // namespace yf::tuner
