// Closed-loop momentum control (Section 4, Algorithm 5).
//
// Under asynchrony, the *total* momentum mu_T (algorithmic + asynchrony-
// induced, Mitliagkas et al. 2016) exceeds the algorithmic value. The
// controller adjusts the applied algorithmic momentum with a negative
// feedback loop so the measured total momentum tracks the tuner's target:
//
//   mu <- mu + gamma * (mu_target - mu_hat_T)
//
// The applied momentum may legitimately go negative (Fig. 4, right pane):
// with 16 workers the asynchrony-induced momentum alone can exceed the
// target.
#pragma once

#include <algorithm>
#include <optional>

namespace yf::optim {
class Optimizer;
class MomentumSGD;
}

namespace yf::tuner {

class YellowFin;

class ClosedLoopController {
 public:
  explicit ClosedLoopController(double gamma = 0.01, double mu0 = 0.0)
      : gamma_(gamma), mu_(mu0) {}

  /// One feedback update; returns the new applied momentum.
  double update(double mu_target, double mu_hat_total) {
    mu_ += gamma_ * (mu_target - mu_hat_total);
    mu_ = std::clamp(mu_, -0.999, 0.999);
    return mu_;
  }

  double applied_momentum() const { return mu_; }
  double gamma() const { return gamma_; }

 private:
  double gamma_;
  double mu_;
};

/// Resolves which optimizer knob Algorithm 5 drives. Shared by the async
/// simulator and the sharded parameter server so the two engines cannot
/// drift on the contract:
///
///  * target(): `mu_target` when set (it overrides the tuner's target),
///    else YellowFin's tuned momentum, else MomentumSGD's momentum;
///  * set_applied(): YellowFin's applied-momentum override, or
///    MomentumSGD's momentum directly;
///  * closed loop is valid only for a YellowFin, or a MomentumSGD plus an
///    explicit `mu_target` (otherwise the controller would chase the very
///    value it writes).
///
/// Holds non-owning pointers; the optimizer must outlive the control.
class MomentumControl {
 public:
  MomentumControl(optim::Optimizer& optimizer, std::optional<double> mu_target);

  /// Throws std::invalid_argument unless the optimizer/target combination
  /// supports closed-loop control; `who` prefixes the message.
  void require_closed_loop_support(const char* who) const;

  /// Current total-momentum target of the feedback loop.
  double target() const;
  /// Currently applied algorithmic momentum (the controller's mu0).
  double applied() const;
  /// Route the controller's output to the optimizer.
  void set_applied(double mu);

 private:
  YellowFin* yellowfin_;            ///< non-null when the optimizer is a YellowFin
  optim::MomentumSGD* momentum_sgd_;  ///< non-null when it is a MomentumSGD
  std::optional<double> mu_target_;
};

}  // namespace yf::tuner
