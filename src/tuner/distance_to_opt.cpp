#include "tuner/distance_to_opt.hpp"

#include <stdexcept>

namespace yf::tuner {

namespace {
constexpr double kEps = 1e-12;
}

void DistanceToOpt::update(double grad_norm) {
  if (!(grad_norm >= 0.0)) throw std::invalid_argument("DistanceToOpt: negative norm");
  grad_norm_avg_.update(grad_norm);
  curvature_avg_.update(grad_norm * grad_norm);
  dist_avg_.update(grad_norm_avg_.value() / (curvature_avg_.value() + kEps));
}

void DistanceToOpt::save_state(core::StateWriter& w) const {
  grad_norm_avg_.save_state(w);
  curvature_avg_.save_state(w);
  dist_avg_.save_state(w);
}

void DistanceToOpt::load_state(core::StateReader& r) {
  grad_norm_avg_.load_state(r);
  curvature_avg_.load_state(r);
  dist_avg_.load_state(r);
}

}  // namespace yf::tuner
