// CurvatureRange (Algorithm 2 + Appendix E/F refinements).
//
// Uses h_t = ||g_t||^2 as a curvature proxy (under the negative
// log-likelihood assumption, g g^T approximates the Hessian along g, with
// eigenvalue ||g||^2). Tracks the extremes over a sliding window of width
// `window` (paper: 20), then smooths the extremes with zero-debiased EWMA.
//
// Refinements implemented exactly as the paper describes:
//  * log-space smoothing: the EWMA runs on log h_{max,t}, log h_{min,t}
//    so fast-decreasing curvatures are tracked (Appendix E);
//  * growth cap for adaptive clipping: h_max,t is limited to 100x the
//    current envelope before entering the EWMA (Eq. 35, Appendix F).
#pragma once

#include <cstdint>
#include <vector>

#include "tuner/ewma.hpp"

namespace yf::tuner {

struct CurvatureRangeOptions {
  double beta = 0.999;
  std::int64_t window = 20;
  bool log_smoothing = true;
  /// When > 0, cap h_max,t at `growth_cap` * current h_max (Eq. 35).
  double growth_cap = 100.0;
};

class CurvatureRange {
 public:
  explicit CurvatureRange(const CurvatureRangeOptions& opts = {});

  /// Observe h_t = ||g_t||^2 for the current step.
  void update(double h_t);

  /// Smoothed extremal curvature estimates; valid after >= 1 update.
  double h_max() const;
  double h_min() const;

  std::int64_t count() const { return count_; }
  const CurvatureRangeOptions& options() const { return opts_; }

  /// Serialize/restore the sliding window and smoothed extremes bit-exactly.
  /// The window width is configuration; load_state rejects a snapshot
  /// written with a different width instead of silently resampling.
  void save_state(core::StateWriter& w) const;
  void load_state(core::StateReader& r);

 private:
  CurvatureRangeOptions opts_;
  /// Sliding window as a fixed ring (allocated once in the constructor):
  /// update() is on the per-step tuner hot path and must not touch the
  /// heap, which a deque does whenever the window slides across a chunk
  /// boundary.
  std::vector<double> window_;
  std::size_t window_count_ = 0;
  std::size_t window_next_ = 0;
  Ewma max_avg_, min_avg_;
  std::int64_t count_ = 0;
};

}  // namespace yf::tuner
