#include "tuner/ewma.hpp"

#include <cmath>
#include <stdexcept>

#include "core/kernels.hpp"

namespace yf::tuner {

double Ewma::update(double x) {
  raw_ = beta_ * raw_ + (1.0 - beta_) * x;
  ++count_;
  return value();
}

double Ewma::value() const {
  if (count_ == 0) return 0.0;
  const double debias = 1.0 - std::pow(beta_, static_cast<double>(count_));
  return raw_ / debias;
}

void Ewma::reset() {
  raw_ = 0.0;
  count_ = 0;
}

void Ewma::save_state(core::StateWriter& w) const {
  w.f64(raw_);
  w.i64(count_);
}

void Ewma::load_state(core::StateReader& r) {
  raw_ = r.f64();
  count_ = r.i64();
  if (count_ < 0) throw core::StateError("Ewma: negative observation count");
}

void TensorEwma::update(const tensor::Tensor& x) {
  if (count_ == 0) {
    raw_ = tensor::Tensor::zeros(x.shape());
  }
  tensor::check_same_shape(raw_, x, "TensorEwma::update");
  core::ewma_update(raw_.data(), x.data(), beta_);
  ++count_;
}

tensor::Tensor TensorEwma::value() const {
  if (count_ == 0) throw std::logic_error("TensorEwma::value: no observations");
  const double debias = 1.0 - std::pow(beta_, static_cast<double>(count_));
  tensor::Tensor out = raw_.clone();
  out.mul_(1.0 / debias);
  return out;
}

}  // namespace yf::tuner
