#include "tuner/curvature_range.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace yf::tuner {

namespace {
constexpr double kTiny = 1e-45;  // floor before log() so h_t = 0 is representable
}

CurvatureRange::CurvatureRange(const CurvatureRangeOptions& opts)
    : opts_(opts), max_avg_(opts.beta), min_avg_(opts.beta) {
  if (opts.window < 1) throw std::invalid_argument("CurvatureRange: window must be >= 1");
}

void CurvatureRange::update(double h_t) {
  if (!(h_t >= 0.0)) throw std::invalid_argument("CurvatureRange: h_t must be non-negative");
  window_.push_back(h_t);
  while (static_cast<std::int64_t>(window_.size()) > opts_.window) window_.pop_front();

  double hmax_t = *std::max_element(window_.begin(), window_.end());
  const double hmin_t = *std::min_element(window_.begin(), window_.end());

  // Eq. (35): limit the growth rate of the envelope for clipping robustness.
  if (opts_.growth_cap > 0.0 && count_ > 0) {
    hmax_t = std::min(hmax_t, opts_.growth_cap * h_max());
  }

  if (opts_.log_smoothing) {
    max_avg_.update(std::log(std::max(hmax_t, kTiny)));
    min_avg_.update(std::log(std::max(hmin_t, kTiny)));
  } else {
    max_avg_.update(hmax_t);
    min_avg_.update(hmin_t);
  }
  ++count_;
}

double CurvatureRange::h_max() const {
  if (count_ == 0) throw std::logic_error("CurvatureRange::h_max: no observations");
  return opts_.log_smoothing ? std::exp(max_avg_.value()) : max_avg_.value();
}

double CurvatureRange::h_min() const {
  if (count_ == 0) throw std::logic_error("CurvatureRange::h_min: no observations");
  return opts_.log_smoothing ? std::exp(min_avg_.value()) : min_avg_.value();
}

}  // namespace yf::tuner
