#include "tuner/curvature_range.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace yf::tuner {

namespace {
constexpr double kTiny = 1e-45;  // floor before log() so h_t = 0 is representable
}

CurvatureRange::CurvatureRange(const CurvatureRangeOptions& opts)
    : opts_(opts), max_avg_(opts.beta), min_avg_(opts.beta) {
  if (opts.window < 1) throw std::invalid_argument("CurvatureRange: window must be >= 1");
  window_.resize(static_cast<std::size_t>(opts.window));
}

void CurvatureRange::update(double h_t) {
  if (!(h_t >= 0.0)) throw std::invalid_argument("CurvatureRange: h_t must be non-negative");
  window_[window_next_] = h_t;
  window_next_ = (window_next_ + 1) % window_.size();
  if (window_count_ < window_.size()) ++window_count_;

  // Extremes over the occupied portion of the ring; order within the
  // window does not affect max/min.
  double hmax_t = window_[0];
  double hmin_t = window_[0];
  for (std::size_t i = 1; i < window_count_; ++i) {
    hmax_t = std::max(hmax_t, window_[i]);
    hmin_t = std::min(hmin_t, window_[i]);
  }

  // Eq. (35): limit the growth rate of the envelope for clipping robustness.
  if (opts_.growth_cap > 0.0 && count_ > 0) {
    hmax_t = std::min(hmax_t, opts_.growth_cap * h_max());
  }

  if (opts_.log_smoothing) {
    max_avg_.update(std::log(std::max(hmax_t, kTiny)));
    min_avg_.update(std::log(std::max(hmin_t, kTiny)));
  } else {
    max_avg_.update(hmax_t);
    min_avg_.update(hmin_t);
  }
  ++count_;
}

double CurvatureRange::h_max() const {
  if (count_ == 0) throw std::logic_error("CurvatureRange::h_max: no observations");
  return opts_.log_smoothing ? std::exp(max_avg_.value()) : max_avg_.value();
}

void CurvatureRange::save_state(core::StateWriter& w) const {
  w.u64(window_.size());
  w.u64(window_count_);
  w.u64(window_next_);
  w.f64_span(window_);
  max_avg_.save_state(w);
  min_avg_.save_state(w);
  w.i64(count_);
}

void CurvatureRange::load_state(core::StateReader& r) {
  if (r.u64() != window_.size()) {
    throw core::StateError("CurvatureRange: snapshot window width differs from configuration");
  }
  window_count_ = static_cast<std::size_t>(r.u64());
  window_next_ = static_cast<std::size_t>(r.u64());
  if (window_count_ > window_.size() || window_next_ >= window_.size()) {
    throw core::StateError("CurvatureRange: ring indices out of range");
  }
  r.f64_span(window_);
  max_avg_.load_state(r);
  min_avg_.load_state(r);
  count_ = r.i64();
  if (count_ < 0) throw core::StateError("CurvatureRange: negative observation count");
}

double CurvatureRange::h_min() const {
  if (count_ == 0) throw std::logic_error("CurvatureRange::h_min: no observations");
  return opts_.log_smoothing ? std::exp(min_avg_.value()) : min_avg_.value();
}

}  // namespace yf::tuner
