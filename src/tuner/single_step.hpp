// SingleStep (Eq. 15) -- the closed-form hyperparameter rule.
//
//   min_{mu, alpha}  mu * D^2 + alpha^2 * C
//   s.t.  mu >= ((sqrt(hmax/hmin) - 1) / (sqrt(hmax/hmin) + 1))^2
//         alpha = (1 - sqrt(mu))^2 / hmin
//
// Substituting the alpha constraint, with x = sqrt(mu) in [0, 1):
//   p(x) = x^2 D^2 + (1 - x)^4 C / hmin^2.
// Setting p'(x) = 0 yields the depressed cubic  y^3 + p y + p = 0 with
// y = x - 1 and p = D^2 hmin^2 / (2 C), solved in closed form via
// Cardano/Vieta (Appendix D). p(x) is unimodal on [0, 1), so the optimum
// is max(x_root^2, mu_lower_bound).
#pragma once

namespace yf::tuner {

struct SingleStepResult {
  double mu = 0.0;
  double alpha = 0.0;
  double mu_unconstrained = 0.0;  ///< cubic-root momentum before the GCN bound
  double mu_lower_bound = 0.0;    ///< ((sqrt r - 1)/(sqrt r + 1))^2, r = hmax/hmin
};

/// Root x in [0, 1) of the cubic optimality condition, i.e. the
/// unconstrained sqrt-momentum. `p` must be > 0.
double solve_cubic_sqrt_mu(double p);

/// Full SingleStep rule. Inputs are the measurement-function outputs:
/// extremal curvatures (hmax >= hmin > 0), gradient variance C >= 0 and
/// distance-to-opt D >= 0. Handles the noiseless limit C -> 0 (momentum
/// collapses to the GCN lower bound).
SingleStepResult single_step(double h_max, double h_min, double c, double d);

}  // namespace yf::tuner
