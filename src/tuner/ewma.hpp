// Zero-debiased exponential moving averages (Kingma & Ba / Appendix E).
//
// All measurement functions in YellowFin smooth their inputs with EWMA at
// beta = 0.999; zero-debias divides by (1 - beta^t) so estimates are usable
// from the first step instead of starting near zero.
#pragma once

#include <cstdint>

#include "core/state.hpp"
#include "tensor/tensor.hpp"

namespace yf::tuner {

/// Scalar EWMA with zero-debias.
class Ewma {
 public:
  explicit Ewma(double beta) : beta_(beta) {}

  /// Incorporate one observation; returns the debiased average.
  double update(double x);

  /// Debiased current value (0 before any update).
  double value() const;

  /// Raw (biased) accumulator, exposed for tests.
  double raw() const { return raw_; }
  std::int64_t count() const { return count_; }
  double beta() const { return beta_; }

  void reset();

  /// Serialize/restore the mutable accumulator bit-exactly (beta is
  /// configuration and comes from the constructor, DESIGN.md §14).
  void save_state(core::StateWriter& w) const;
  void load_state(core::StateReader& r);

 private:
  double beta_;
  double raw_ = 0.0;
  std::int64_t count_ = 0;
};

/// Elementwise EWMA over same-shaped tensors, with zero-debias.
class TensorEwma {
 public:
  explicit TensorEwma(double beta) : beta_(beta) {}

  /// Incorporate one observation (allocates state on first call).
  void update(const tensor::Tensor& x);

  /// Debiased average; throws if never updated.
  tensor::Tensor value() const;

  bool initialized() const { return count_ > 0; }
  std::int64_t count() const { return count_; }

 private:
  double beta_;
  tensor::Tensor raw_;
  std::int64_t count_ = 0;
};

}  // namespace yf::tuner
