// YellowFin (Algorithm 1): momentum SGD whose learning rate and momentum
// are tuned every iteration from gradient measurements.
//
// Per step:
//   1. (optional) adaptive gradient clipping at threshold sqrt(h_max)
//      (Appendix F);
//   2. update CurvatureRange / GradientVariance / DistanceToOpt from the
//      (possibly clipped) gradient (Algorithms 2-4);
//   3. SingleStep closed form -> (mu_t, alpha_t) (Eq. 15, Appendix D);
//   4. smooth the hyperparameters themselves with beta-EWMA, apply slow
//      start alpha <- min(alpha_t, t * alpha_t / (10 w)) (Appendix E) and
//      the Fig. 11 manual lr_factor;
//   5. Polyak-momentum update v <- mu v - alpha g;  x <- x + v.
//
// The tuner works directly on the optimizer's ParamArena: the gradient is
// already one contiguous buffer, so clipping, the norm for Algorithms 2/4
// and the fused two-moment EWMA of Algorithm 3 all run as single passes
// with no flatten copy -- the measured per-step overhead stays in line
// with the paper's "negligible" claim.
#pragma once

#include <optional>
#include <span>

#include "optim/optimizer.hpp"
#include "tuner/curvature_range.hpp"
#include "tuner/distance_to_opt.hpp"
#include "tuner/gradient_variance.hpp"
#include "tuner/single_step.hpp"

namespace yf::tuner {

struct YellowFinOptions {
  double beta = 0.999;           ///< smoothing for all measurement EWMAs
  std::int64_t window = 20;      ///< curvature sliding-window width
  bool adaptive_clipping = true; ///< clip grads at sqrt(h_max) (App. F)
  bool slow_start = true;        ///< discount lr during warm-up (App. E)
  /// Warm-up length for slow start; <= 0 means the paper's 10 * window.
  std::int64_t slow_start_iters = 0;
  double lr_factor = 1.0;        ///< Fig. 11 manual multiplier on alpha
  bool smooth_hyperparams = true;///< EWMA on (mu_t, alpha_t) themselves
  /// Fixed-momentum ablation (Fig. 9): when set, the tuner still runs but
  /// the applied momentum is this constant.
  std::optional<double> force_momentum;
  /// Initial values used before measurements warm up.
  double lr0 = 1e-4;
  double mu0 = 0.0;
};

class YellowFin : public optim::Optimizer {
 public:
  YellowFin(std::vector<autograd::Variable> params, const YellowFinOptions& opts = {});

  /// Global stage: adaptive clipping (in place on `grad`), Algorithms 2-4
  /// measurement, SingleStep + smoothing + slow start. The returned plan
  /// carries the *effective* (post slow-start, post lr_factor) learning
  /// rate and the applied momentum (after force_momentum / closed-loop
  /// override), so sharded sweeps replay exactly what step() would do.
  optim::ApplyPlan begin_apply(std::span<double> grad) override;
  void step_span(const optim::ApplyPlan& plan, std::int64_t lo, std::int64_t hi) override;
  std::string name() const override { return "yellowfin"; }

  /// begin_apply clips and measures the FULL gradient: the plan depends
  /// on every shard, so nothing may be applied before backward finishes.
  bool grad_free_begin() const override { return false; }

  /// Base lr here means the tuner's current (smoothed) alpha.
  double lr() const override { return alpha_; }
  void set_lr(double lr) override { alpha_ = lr; }

  /// Tuner state introspection (benches/tests).
  double momentum() const { return mu_; }
  double target_momentum() const { return target_mu_; }      ///< pre-ablation mu_t
  double target_lr() const { return target_alpha_; }
  double h_max() const { return curvature_.count() ? curvature_.h_max() : 0.0; }
  double h_min() const { return curvature_.count() ? curvature_.h_min() : 0.0; }
  double grad_variance() const { return variance_.variance(); }
  double distance_to_opt() const { return distance_.distance(); }
  double last_clip_threshold() const { return last_clip_threshold_; }
  bool last_step_clipped() const { return last_step_clipped_; }

  /// Closed-loop hook (Algorithm 5): override the *applied* momentum for
  /// the next step without touching the tuner target.
  void set_applied_momentum(double mu) { applied_mu_override_ = mu; }
  void clear_applied_momentum() { applied_mu_override_.reset(); }

  const YellowFinOptions& options() const { return opts_; }

  /// Full tuner snapshot: iteration, (mu, alpha) smoothing state, the
  /// SingleStep targets, clipping flags, the closed-loop override, all
  /// measurement components (Algorithms 2-4) and the velocity buffer --
  /// everything a restored master needs to continue the trajectory
  /// bit-identically (DESIGN.md §14). Options are configuration and are
  /// NOT saved; restore into an identically configured instance.
  void save_state(core::StateWriter& w) const override;
  void load_state(core::StateReader& r) override;

 private:
  void measure(std::span<const double> flat_grad);

  YellowFinOptions opts_;
  CurvatureRange curvature_;
  GradientVariance variance_;
  DistanceToOpt distance_;
  Ewma mu_avg_, alpha_avg_;

  double mu_;            ///< smoothed applied momentum
  double alpha_;         ///< smoothed applied lr (before slow start / factor)
  double target_mu_;     ///< raw SingleStep output of the last step
  double target_alpha_;
  double last_clip_threshold_ = 0.0;
  bool last_step_clipped_ = false;
  std::optional<double> applied_mu_override_;
  tensor::Tensor velocity_;  ///< flat, aligned with the arena layout
};

}  // namespace yf::tuner
