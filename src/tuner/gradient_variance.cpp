#include "tuner/gradient_variance.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/kernels.hpp"

namespace yf::tuner {

void GradientVariance::update(std::span<const double> grad) {
  if (count_ == 0) {
    const auto n = static_cast<std::int64_t>(grad.size());
    m1_raw_ = tensor::Tensor(tensor::Shape{n});
    m2_raw_ = tensor::Tensor(tensor::Shape{n});
  } else if (grad.size() != m1_raw_.data().size()) {
    throw std::invalid_argument("GradientVariance::update: gradient size changed");
  }
  core::ewma_update_moments(m1_raw_.data(), m2_raw_.data(), grad, beta_);
  ++count_;
}

void GradientVariance::save_state(core::StateWriter& w) const {
  w.i64(count_);
  w.u64(count_ > 0 ? m1_raw_.data().size() : 0);
  if (count_ > 0) {
    w.f64_span(m1_raw_.data());
    w.f64_span(m2_raw_.data());
  }
}

void GradientVariance::load_state(core::StateReader& r) {
  count_ = r.i64();
  const std::uint64_t n = r.u64();
  if (count_ < 0) throw core::StateError("GradientVariance: negative observation count");
  if (count_ > 0) {
    if (n == 0) throw core::StateError("GradientVariance: initialized snapshot with no moments");
    m1_raw_ = tensor::Tensor(tensor::Shape{static_cast<std::int64_t>(n)});
    m2_raw_ = tensor::Tensor(tensor::Shape{static_cast<std::int64_t>(n)});
    r.f64_span(m1_raw_.data());
    r.f64_span(m2_raw_.data());
  }
}

double GradientVariance::variance() const {
  if (count_ == 0) return 0.0;
  const double debias = 1.0 - std::pow(beta_, static_cast<double>(count_));
  const double inv = 1.0 / debias;
  const double c = core::debiased_variance_sum(m1_raw_.data(), m2_raw_.data(), inv, inv);
  return std::max(c, 0.0);
}

}  // namespace yf::tuner
