#include "tuner/gradient_variance.hpp"

#include <algorithm>

#include "tensor/ops.hpp"

namespace yf::tuner {

void GradientVariance::update(const tensor::Tensor& grad) {
  g_avg_.update(grad);
  g2_avg_.update(tensor::square(grad));
}

double GradientVariance::variance() const {
  if (!g_avg_.initialized()) return 0.0;
  const auto mean = g_avg_.value();
  const auto mean_sq = g2_avg_.value();
  double c = 0.0;
  auto m = mean.data();
  auto m2 = mean_sq.data();
  for (std::size_t i = 0; i < m.size(); ++i) c += m2[i] - m[i] * m[i];
  return std::max(c, 0.0);
}

}  // namespace yf::tuner
