#include "tuner/closed_loop.hpp"

// Header-only controller; TU anchors the target in the build graph.
