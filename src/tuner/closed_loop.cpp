#include "tuner/closed_loop.hpp"

#include <stdexcept>
#include <string>

#include "optim/momentum_sgd.hpp"
#include "tuner/yellowfin.hpp"

namespace yf::tuner {

MomentumControl::MomentumControl(optim::Optimizer& optimizer, std::optional<double> mu_target)
    : yellowfin_(dynamic_cast<YellowFin*>(&optimizer)),
      momentum_sgd_(dynamic_cast<optim::MomentumSGD*>(&optimizer)),
      mu_target_(mu_target) {}

void MomentumControl::require_closed_loop_support(const char* who) const {
  if (yellowfin_ || (momentum_sgd_ && mu_target_)) return;
  throw std::invalid_argument(std::string(who) +
                              ": closed loop requires a YellowFin optimizer, or a "
                              "MomentumSGD plus an explicit mu_target");
}

double MomentumControl::target() const {
  if (mu_target_) return *mu_target_;
  if (yellowfin_) return yellowfin_->momentum();
  if (momentum_sgd_) return momentum_sgd_->momentum();
  return 0.0;
}

double MomentumControl::applied() const {
  if (yellowfin_) return yellowfin_->momentum();
  if (momentum_sgd_) return momentum_sgd_->momentum();
  return 0.0;
}

void MomentumControl::set_applied(double mu) {
  if (yellowfin_) {
    yellowfin_->set_applied_momentum(mu);
  } else if (momentum_sgd_) {
    momentum_sgd_->set_momentum(mu);
  }
}

}  // namespace yf::tuner
